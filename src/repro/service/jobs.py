"""Async job manager: bounded FIFO queue + worker pool + lifecycle.

The :class:`JobManager` is the service's scheduling core and is fully
usable without HTTP (the API layer in :mod:`repro.service.http` is a
thin JSON shim over it):

* **admission** — :meth:`submit` validates the spec against the dataset
  registry, consults the result cache (a hit completes the job
  instantly, without touching the queue), and otherwise enqueues it.
  When the bounded queue is full it raises :class:`QueueFullError` —
  callers apply back-pressure (HTTP maps it to ``429``) instead of
  buffering unboundedly;
* **execution** — a fixed pool of worker threads pops jobs FIFO and
  runs them through :func:`repro.service.runner.execute_job`.  Worker
  threads are cheap here because the heavy lifting is numpy (GIL
  released) or delegated to the process execution backend;
* **lifecycle** — ``queued → running → done | failed | cancelled``.
  Cancelling a queued job marks it immediately; cancelling a running
  job sets its cancel event, which the runner's round-barrier observer
  turns into an unwind.  Timeouts travel the same path and land in
  ``failed`` with a timeout error message;
* **retry** — a :class:`RetryPolicy` (manager default, overridable per
  job via ``spec.max_retries``) re-enqueues crashed jobs with
  exponential backoff and deterministic jitter.  Cancellations and
  timeouts are *not* retried — they are decisions, not faults — and a
  job goes terminal ``failed`` only after the budget is exhausted.
  Every attempt is recorded in :attr:`Job.attempts` and surfaced by
  :meth:`Job.describe`.

Every transition is recorded with a monotonic-free wall timestamp so
``GET /jobs/<id>`` can report queue latency and run time.
"""

from __future__ import annotations

import hashlib
import itertools
import queue
import threading
import time
import traceback
import warnings
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.faults import FaultPlan
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.record import RunLog
from repro.obs.tracing import TraceContext, use_trace
from repro.service.cache import ResultCache
from repro.service.datasets import DatasetRegistry
from repro.service.runner import JobCancelled, JobTimeout, execute_job
from repro.service.spec import JobSpec

_log = get_logger("repro.service.jobs")


class QueueFullError(RuntimeError):
    """The bounded job queue is at capacity; resubmit later."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the manager retries crashed jobs.

    The default budget is 0 — retry is opt-in, because a
    deterministically-failing job would just fail slower.  Backoff is
    exponential with a small *deterministic* jitter (hashed from the
    job id and attempt number, so reruns of a chaos suite sleep the
    same amounts).
    """

    #: re-runs after the first failed attempt (0 = fail immediately)
    max_retries: int = 0
    #: initial backoff before the first retry, seconds
    backoff_s: float = 0.25
    #: multiplier applied per subsequent retry
    factor: float = 2.0
    #: backoff ceiling, seconds
    max_backoff_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), seconds.

        Jitter is ±25%, derived from ``(key, attempt)`` with BLAKE2b —
        a pure function, so a replayed run backs off identically.
        """
        base = min(self.backoff_s * self.factor ** (attempt - 1), self.max_backoff_s)
        digest = hashlib.blake2b(
            repr((key, attempt)).encode(), digest_size=8
        ).digest()
        jitter = 0.75 + 0.5 * (int.from_bytes(digest, "big") / 2**64)
        return min(base * jitter, self.max_backoff_s)

    def to_dict(self) -> dict:
        return {
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "factor": self.factor,
            "max_backoff_s": self.max_backoff_s,
        }


class UnknownJobError(KeyError):
    """No job with the requested id."""


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One submitted unit of work and everything it produced."""

    id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: JSON-safe result payload (set when state == DONE)
    result: Optional[dict] = None
    #: error message / traceback (set when state == FAILED)
    error: Optional[str] = None
    #: True when the result came from the cache, not a solver run
    cached: bool = False
    #: the recorded run log (also set for cache hits: the producing run's)
    run_log: Optional[RunLog] = None
    #: the request's distributed-trace context (assigned at submit; the
    #: HTTP layer passes the incoming request's, so one trace id links
    #: the client call, the job, and the solver run)
    trace: Optional[TraceContext] = None
    #: 0-based index of the current/last execution attempt
    attempt: int = 0
    #: one record per *failed* attempt that was retried:
    #: ``{"attempt", "error", "failed_at", "backoff_s"}``
    attempts: List[dict] = field(default_factory=list)
    cancel_event: threading.Event = field(default_factory=threading.Event)
    done_event: threading.Event = field(default_factory=threading.Event)

    def describe(self, include_result: bool = True) -> dict:
        """JSON-safe status record for the API."""
        out = {
            "id": self.id,
            "state": self.state.value,
            "spec": self.spec.to_dict(),
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cached": self.cached,
            "attempt": self.attempt,
            "trace_id": self.trace.trace_id if self.trace is not None else None,
        }
        if self.attempts:
            out["attempts"] = [dict(a) for a in self.attempts]
        if self.error is not None:
            out["error"] = self.error
        if include_result and self.result is not None:
            out["result"] = self.result
        return out


class JobManager:
    """Bounded FIFO queue in front of a worker pool.

    Parameters
    ----------
    datasets:
        The registry job specs resolve their ``dataset`` ids against.
    cache:
        Result cache; a fresh unbounded-ish default when omitted, or
        ``None``-like behaviour can be had by passing a 1-entry cache.
    workers:
        Worker thread count.
    backend:
        Execution backend name handed to every solver run
        (``serial``/``thread``/``process``).
    queue_limit:
        Maximum number of *queued* (not yet running) jobs; submissions
        beyond it raise :class:`QueueFullError`.
    default_timeout_s:
        Per-job wall-clock budget applied when the spec carries none.
    max_history:
        Maximum number of *terminal* jobs retained for ``GET /jobs``;
        beyond it the oldest terminal jobs (and their result payloads
        and run logs) are evicted, so a long-running service holds a
        bounded amount of history instead of every job ever submitted.
        Queued and running jobs are never evicted.
    retry_policy:
        Default :class:`RetryPolicy` for crashed jobs; a job spec's
        ``max_retries`` overrides the budget (backoff shape stays the
        policy's).  Defaults to no retries.
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or spec) applied to
        every solver run — the chaos path for the executor and machine
        layers.  Service-layer faults live in the HTTP front-end.
    stop_timeout_s:
        Per-thread join budget in :meth:`stop`; workers that miss it
        are reported as stuck instead of silently discarded.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` this manager
        feeds (a fresh one per manager when omitted, so two servers in
        one process never mix counters).  Solver-level metrics stream
        in live via a per-job observer; the manager's own tallies are
        mirrored in at every :meth:`sync_metrics` call — which the
        HTTP layer makes before serving ``GET /metrics`` or the
        ``metrics`` block of ``GET /stats``.
    """

    def __init__(
        self,
        datasets: DatasetRegistry,
        cache: Optional[ResultCache] = None,
        *,
        workers: int = 2,
        backend: str = "serial",
        queue_limit: int = 64,
        default_timeout_s: Optional[float] = None,
        max_history: int = 1024,
        retry_policy: Optional[RetryPolicy] = None,
        faults=None,
        stop_timeout_s: float = 30.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if max_history < 1:
            raise ValueError(f"max_history must be >= 1, got {max_history}")
        if stop_timeout_s <= 0:
            raise ValueError(f"stop_timeout_s must be > 0, got {stop_timeout_s}")
        self.datasets = datasets
        self.cache = cache if cache is not None else ResultCache()
        self.backend = backend
        self.queue_limit = queue_limit
        self.workers = workers
        self.default_timeout_s = default_timeout_s
        self.max_history = max_history
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.faults = FaultPlan.from_spec(faults)
        self.stop_timeout_s = float(stop_timeout_s)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._job_latency = self.metrics.histogram(
            "repro_job_latency_seconds",
            "started-to-terminal wall-clock per executed (non-cached) job",
            labels=("algorithm",),
        )

        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(maxsize=queue_limit)
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._threads: List[threading.Thread] = []
        self._stuck_threads: List[threading.Thread] = []
        self._retry_timers: List[threading.Timer] = []
        self._stop = threading.Event()
        self._resume = threading.Event()
        self._resume.set()
        self._started = False
        # counters (under _lock)
        self._submitted = 0
        self._rejected = 0
        self._by_algorithm: Dict[str, int] = {}
        self._retries = 0
        self._jobs_recovered = 0
        self._jobs_exhausted = 0
        #: wall stamp, for display in stats()
        self._last_retry_at: Optional[float] = None
        #: monotonic stamp, for interval math (immune to clock jumps)
        self._last_retry_mono: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "JobManager":
        """Spawn the worker pool (idempotent); returns ``self``."""
        if self._started:
            return self
        self._started = True
        self._stop.clear()
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"repro-job-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def stop(self, wait: bool = True) -> None:
        """Stop the pool.  Queued jobs stay queued (drained on restart);
        the running job, if any, finishes first.

        With ``wait=True``, each worker gets :attr:`stop_timeout_s` to
        join.  Workers that miss the deadline are *not* silently
        discarded: a :class:`RuntimeWarning` names them and they stay
        visible as ``stuck_workers`` in :meth:`stats` until they
        actually exit.  Pending retry timers are cancelled; their jobs
        stay queued in-memory state and re-enter on restart via the
        normal queue.
        """
        self._stop.set()
        self._resume.set()
        with self._lock:
            timers, self._retry_timers = self._retry_timers, []
        for timer in timers:
            timer.cancel()
        stuck: List[threading.Thread] = []
        if wait:
            for t in self._threads:
                t.join(timeout=self.stop_timeout_s)
                if t.is_alive():
                    stuck.append(t)
            if stuck:
                warnings.warn(
                    f"JobManager.stop(): {len(stuck)} worker(s) still alive "
                    f"after {self.stop_timeout_s}s: "
                    f"{', '.join(t.name for t in stuck)} — the running job "
                    "is not round-barrier-interruptible; it will finish (or "
                    "leak) in the background",
                    RuntimeWarning,
                    stacklevel=2,
                )
        with self._lock:
            # forget clean exits; remember the stragglers for stats()
            self._stuck_threads = [
                t for t in self._stuck_threads + stuck if t.is_alive()
            ]
        self._threads = []
        self._started = False

    def pause(self) -> None:
        """Stop popping new jobs (running jobs finish).  For drains,
        admission-control tests, and maintenance windows."""
        self._resume.clear()

    def resume(self) -> None:
        self._resume.set()

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec, trace: Optional[TraceContext] = None) -> Job:
        """Admit a job: cache hit → instantly ``done``; else enqueue.

        ``trace`` is the submitting request's context (the HTTP layer
        passes the parsed/minted ``traceparent``); the job becomes a
        child of it, so the whole solver run shares the request's trace
        id.  A fresh root is minted when omitted.

        Raises :class:`UnknownDatasetError` for an unregistered dataset,
        :class:`ValueError` for invalid parameters, and
        :class:`QueueFullError` when the queue is at capacity.
        """
        dataset = self.datasets.get(spec.dataset)
        if spec.k > dataset.n:
            raise ValueError(
                f"k={spec.k} exceeds dataset size n={dataset.n} ({dataset.id})"
            )
        if spec.timeout_s is None and self.default_timeout_s is not None:
            spec.timeout_s = float(self.default_timeout_s)
        base = trace if trace is not None else TraceContext.generate()

        with self._lock:
            job = Job(id=f"job-{next(self._ids):06d}", spec=spec,
                      trace=base.child("job"))
            self._jobs[job.id] = job
            self._submitted += 1
            self._by_algorithm[spec.algorithm] = (
                self._by_algorithm.get(spec.algorithm, 0) + 1
            )

        hit = self.cache.get(spec.cache_key(dataset.fingerprint))
        if hit is not None:
            payload, run_log = hit
            with self._lock:
                if job.state is JobState.QUEUED:  # vs a racing cancel()
                    job.result, job.run_log = payload, run_log
                    job.cached = True
                    job.state = JobState.DONE
                    job.finished_at = time.time()
                self._prune_history_locked()
            job.done_event.set()
            _log.info(
                "job served from cache",
                extra={"job_id": job.id, "trace_id": job.trace.trace_id,
                       "algorithm": spec.algorithm},
            )
            return job

        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                self._rejected += 1
                del self._jobs[job.id]
            _log.warning(
                "job rejected: queue full",
                extra={"trace_id": base.trace_id, "algorithm": spec.algorithm,
                       "queue_limit": self.queue_limit},
            )
            raise QueueFullError(
                f"job queue full ({self.queue_limit} queued); retry later"
            ) from None
        _log.info(
            "job queued",
            extra={"job_id": job.id, "trace_id": job.trace.trace_id,
                   "algorithm": spec.algorithm, "dataset": spec.dataset},
        )
        return job

    # -- queries ------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def list_jobs(self, state: Optional[JobState] = None) -> List[Job]:
        with self._lock:
            jobs = list(self._jobs.values())
        if state is not None:
            jobs = [j for j in jobs if j.state is state]
        return jobs

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.get(job_id)
        if not job.done_event.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.state.value} after {timeout}s")
        return job

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; returns the job.

        Queued jobs flip to ``cancelled`` right away (the worker skips
        them); running jobs are unwound at their next round barrier.
        Terminal jobs are returned unchanged.
        """
        job = self.get(job_id)
        # compare-and-set under the lock: either we mark the job
        # cancelled here, or the worker has already claimed it (flipped
        # it to RUNNING under the same lock) and will honour the event
        # at its next round barrier — never both.
        with self._lock:
            job.cancel_event.set()
            flipped = job.state is JobState.QUEUED
            if flipped:
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                self._prune_history_locked()
        if flipped:
            job.done_event.set()
        return job

    def stats(self) -> dict:
        """Operational counters for ``GET /stats``.

        The ``*_total`` keys share names with their ``repro_*``
        Prometheus counterparts on ``GET /metrics`` (one naming scheme,
        two surfaces — see ``docs/metrics.md``), and
        :meth:`sync_metrics` mirrors exactly these values into the
        registry, so the two endpoints can never disagree.
        """
        with self._lock:
            by_state: Dict[str, int] = {s.value: 0 for s in JobState}
            for job in self._jobs.values():
                by_state[job.state.value] += 1
            self._stuck_threads = [t for t in self._stuck_threads if t.is_alive()]
            out = {
                "queue_depth": self._queue.qsize(),
                "queue_limit": self.queue_limit,
                "max_history": self.max_history,
                "workers": self.workers,
                "backend": self.backend,
                "paused": not self._resume.is_set(),
                "jobs_submitted_total": self._submitted,
                "jobs_rejected_total": self._rejected,
                "jobs_by_state": by_state,
                "jobs_by_algorithm": dict(self._by_algorithm),
                "cache": self.cache.stats(),
                "stuck_workers": [t.name for t in self._stuck_threads],
                "retry": {
                    "policy": self.retry_policy.to_dict(),
                    "retries_total": self._retries,
                    "jobs_recovered_total": self._jobs_recovered,
                    "jobs_exhausted_total": self._jobs_exhausted,
                    "last_retry_at": self._last_retry_at,
                },
            }
            if self.faults is not None:
                out["faults"] = self.faults.describe()
            return out

    def sync_metrics(self) -> MetricsRegistry:
        """Mirror the manager's authoritative tallies into the registry.

        The queue/cache/retry counters live as plain ints under the
        manager's lock (they are consulted on admission paths where a
        registry lookup would be waste); this projects them into the
        metric families right before a scrape, guaranteeing ``/stats``
        and ``/metrics`` agree.  Returns the registry for chaining.
        """
        stats = self.stats()
        m = self.metrics
        m.counter(
            "repro_jobs_submitted_total", "jobs admitted (cache hits included)"
        ).set_total(stats["jobs_submitted_total"])
        m.counter(
            "repro_jobs_rejected_total", "submissions refused by the bounded queue"
        ).set_total(stats["jobs_rejected_total"])
        retry = stats["retry"]
        m.counter(
            "repro_job_retries_total", "crashed-job retries scheduled"
        ).set_total(retry["retries_total"])
        m.counter(
            "repro_jobs_recovered_total", "jobs that succeeded after >=1 retry"
        ).set_total(retry["jobs_recovered_total"])
        m.counter(
            "repro_jobs_exhausted_total", "jobs that failed with their retry budget spent"
        ).set_total(retry["jobs_exhausted_total"])
        cache = stats["cache"]
        m.counter("repro_cache_hits_total", "result-cache hits").set_total(
            cache["hits_total"]
        )
        m.counter("repro_cache_misses_total", "result-cache misses").set_total(
            cache["misses_total"]
        )
        m.gauge("repro_cache_hit_ratio", "hits / (hits + misses)").set(
            cache["hit_ratio"]
        )
        m.gauge("repro_cache_entries", "live result-cache entries").set(
            cache["entries"]
        )
        m.gauge("repro_queue_depth", "jobs waiting in the bounded queue").set(
            stats["queue_depth"]
        )
        return m

    def recent_retry_activity(self, window_s: float = 60.0) -> bool:
        """True when a retry fired within the last ``window_s`` seconds
        (the health endpoint's "degraded" signal).

        Interval math is done on :func:`time.monotonic` stamps — a
        wall-clock jump (NTP step, manual reset) can neither flip the
        service to degraded nor mask real retry activity.  The wall
        stamp in :meth:`stats` remains display-only.
        """
        with self._lock:
            last = self._last_retry_mono
        return last is not None and (time.monotonic() - last) <= window_s

    # -- worker pool --------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            self._resume.wait(timeout=0.1)
            if not self._resume.is_set():
                continue
            try:
                job = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            try:
                self._run_job(job)
            finally:
                self._queue.task_done()

    def _prune_history_locked(self) -> None:
        """Evict the oldest terminal jobs beyond ``max_history``.

        Caller holds ``_lock``.  ``_jobs`` preserves insertion (i.e.
        submission) order, so the slice below is oldest-first; queued
        and running jobs are never touched.
        """
        terminal = [jid for jid, j in self._jobs.items() if j.state.terminal]
        excess = len(terminal) - self.max_history
        if excess > 0:
            for jid in terminal[:excess]:
                del self._jobs[jid]

    def _run_job(self, job: Job) -> None:
        # claim the job with a compare-and-set paired with cancel():
        # exactly one of {QUEUED->RUNNING here, QUEUED->CANCELLED there}
        # wins, so waiters never observe a "terminal then running" job.
        with self._lock:
            if job.cancel_event.is_set() or job.state.terminal:
                if not job.state.terminal:
                    job.state = JobState.CANCELLED
                    job.finished_at = time.time()
                    self._prune_history_locked()
                claimed = False
            else:
                job.state = JobState.RUNNING
                job.started_at = time.time()
                claimed = True
        if not claimed:
            job.done_event.set()
            return
        spec = job.spec
        _log.info(
            "job running",
            extra={"job_id": job.id,
                   "trace_id": job.trace.trace_id if job.trace else None,
                   "algorithm": spec.algorithm, "attempt": job.attempt},
        )
        try:
            dataset = self.datasets.get(spec.dataset)
            with use_trace(job.trace):
                payload, run_log = execute_job(
                    spec,
                    dataset,
                    backend=self.backend,
                    cancel_event=job.cancel_event,
                    job_id=job.id,
                    faults=self.faults,
                    metrics=self.metrics,
                    trace=job.trace,
                )
        except JobCancelled:
            state, error, produced = JobState.CANCELLED, None, None
        except JobTimeout:
            state = JobState.FAILED
            error = f"timed out after {spec.timeout_s}s (round-barrier check)"
            produced = None
        except Exception:
            # crashes (unlike cancellations and timeouts, which are
            # decisions) are retryable: re-enqueue with backoff while
            # the budget lasts, terminal FAILED only after exhaustion
            error = traceback.format_exc()
            if self._schedule_retry(job, error):
                return
            state, produced = JobState.FAILED, None
        else:
            state, error, produced = JobState.DONE, None, (payload, run_log)
            self.cache.put(spec.cache_key(dataset.fingerprint), payload, run_log)
        with self._lock:
            if produced is not None:
                job.result, job.run_log = produced
                if job.attempt > 0:
                    self._jobs_recovered += 1
            job.error = error
            job.state = state
            job.finished_at = time.time()
            self._prune_history_locked()
        if job.started_at is not None:
            self._job_latency.labels(spec.algorithm).observe(
                job.finished_at - job.started_at
            )
        _log.info(
            f"job {state.value}",
            extra={"job_id": job.id,
                   "trace_id": job.trace.trace_id if job.trace else None,
                   "algorithm": spec.algorithm, "attempt": job.attempt,
                   **({"reason": error.strip().splitlines()[-1]}
                      if error else {})},
        )
        job.done_event.set()

    # -- retry --------------------------------------------------------------

    def _retry_budget(self, job: Job) -> int:
        """Effective retry budget: the spec's override, else the policy's."""
        if job.spec.max_retries is not None:
            return job.spec.max_retries
        return self.retry_policy.max_retries

    def _schedule_retry(self, job: Job, error: str) -> bool:
        """Re-enqueue a crashed job after backoff if its budget allows.

        Returns True when a retry was scheduled (the job goes back to
        ``queued``; the caller must NOT mark it terminal).
        """
        if job.cancel_event.is_set() or self._stop.is_set():
            return False
        budget = self._retry_budget(job)
        if job.attempt >= budget:
            if budget > 0:
                with self._lock:
                    self._jobs_exhausted += 1
            return False
        delay = self.retry_policy.delay(job.attempt + 1, key=job.id)
        summary = error.strip().splitlines()[-1] if error.strip() else "unknown error"
        with self._lock:
            job.attempts.append(
                {
                    "attempt": job.attempt,
                    "error": summary,
                    "failed_at": time.time(),
                    "backoff_s": round(delay, 4),
                }
            )
            job.attempt += 1
            job.state = JobState.QUEUED
            job.started_at = None
            self._retries += 1
            self._last_retry_at = time.time()
            self._last_retry_mono = time.monotonic()
            timer = threading.Timer(delay, self._requeue, args=(job,))
            timer.daemon = True
            self._retry_timers.append(timer)
        _log.warning(
            "job crashed; retry scheduled",
            extra={"job_id": job.id,
                   "trace_id": job.trace.trace_id if job.trace else None,
                   "attempt": job.attempt, "backoff_s": round(delay, 4),
                   "reason": summary},
        )
        timer.start()
        return True

    def _requeue(self, job: Job) -> None:
        """Timer callback: put a retried job back on the queue."""
        with self._lock:
            self._retry_timers = [
                t for t in self._retry_timers if t.is_alive()
            ]
            if job.state is not JobState.QUEUED or job.cancel_event.is_set():
                return  # cancelled (or manager reset) while backing off
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            last = job.attempts[-1]["error"] if job.attempts else "unknown error"
            with self._lock:
                if job.state is not JobState.QUEUED:
                    return
                job.state = JobState.FAILED
                job.error = f"retry abandoned (queue full) after: {last}"
                job.finished_at = time.time()
                self._prune_history_locked()
            job.done_event.set()
