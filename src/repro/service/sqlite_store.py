"""SQLite/file-backed store implementations — the durable backends.

One state directory holds everything N frontends and M workers share:

```
<state_dir>/
  service.db          # jobs, work queue, dataset descriptors, results
  datasets/
    <fingerprint>.npy # content-addressed point blobs
```

``service.db`` runs in WAL mode so readers never block the single
writer, with a generous ``busy_timeout`` so short write collisions
retry instead of failing.  Every compare-and-set transition
(:meth:`SqliteJobStore.claim` / :meth:`~SqliteJobStore.finish` /
:meth:`~SqliteJobStore.recover_orphans`) runs under ``BEGIN
IMMEDIATE``, which takes the write lock up front — two workers racing
to claim one job serialize at the database and exactly one sees the
``queued`` precondition hold.

Serialization choices:

* job specs / params / result payloads are stored as canonical JSON
  (they are JSON-safe by construction — they travel over the HTTP API);
* run logs are pickled — :class:`~repro.obs.record.RunLog` is a tree of
  plain dataclasses, and the trace endpoint needs it back verbatim;
* result-cache keys are ``sha256(repr(cache_key))``:
  :meth:`~repro.service.spec.JobSpec.cache_key` is a tuple of
  primitives, so its ``repr`` is stable across processes and Python
  runs — the property cross-process cache sharing rests on;
* point blobs are ``.npy`` files named by the dataset fingerprint —
  content-addressed, so concurrent registrations of the same data are
  idempotent at the filesystem level (atomic rename, last writer wins
  with identical bytes).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sqlite3
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.service.store import (
    AnalysisRecord,
    DatasetRecord,
    JobRecord,
    QueueFullError,
    UnknownAnalysisError,
    UnknownJobError,
    _orphan_note,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    num              INTEGER PRIMARY KEY,
    id               TEXT UNIQUE NOT NULL,
    state            TEXT NOT NULL,
    spec             TEXT NOT NULL,
    created_at       REAL NOT NULL,
    queued_at        REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    result           TEXT,
    error            TEXT,
    cached           INTEGER NOT NULL DEFAULT 0,
    attempt          INTEGER NOT NULL DEFAULT 0,
    attempts         TEXT NOT NULL DEFAULT '[]',
    trace_id         TEXT,
    traceparent      TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    worker           TEXT,
    lease_expires_at REAL,
    run_log          BLOB,
    version          INTEGER NOT NULL DEFAULT 1
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs(state);

CREATE TABLE IF NOT EXISTS counters (
    name TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);

CREATE TABLE IF NOT EXISTS work_queue (
    seq    INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS datasets (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    id          TEXT UNIQUE NOT NULL,
    fingerprint TEXT NOT NULL,
    kind        TEXT NOT NULL,
    params      TEXT NOT NULL,
    n           INTEGER NOT NULL,
    metric_name TEXT NOT NULL,
    created_at  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS datasets_by_fp ON datasets(fingerprint);

CREATE TABLE IF NOT EXISTS results (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    key     TEXT UNIQUE NOT NULL,
    payload TEXT NOT NULL,
    run_log BLOB
);

CREATE TABLE IF NOT EXISTS analyses (
    num          INTEGER PRIMARY KEY,
    id           TEXT UNIQUE NOT NULL,
    state        TEXT NOT NULL,
    spec         TEXT NOT NULL,
    created_at   REAL NOT NULL,
    finished_at  REAL,
    cell_job_ids TEXT NOT NULL DEFAULT '[]',
    report       TEXT,
    error        TEXT,
    trace_id     TEXT,
    traceparent  TEXT,
    version      INTEGER NOT NULL DEFAULT 1
);
CREATE INDEX IF NOT EXISTS analyses_by_state ON analyses(state);
"""

#: how long a writer waits on a locked database before erroring (ms)
BUSY_TIMEOUT_MS = 10_000


def prepare_state_dir(state_dir) -> Tuple[Path, Path]:
    """Create (or adopt) a state directory; returns (db_path, blob_dir)."""
    root = Path(state_dir)
    blob_dir = root / "datasets"
    blob_dir.mkdir(parents=True, exist_ok=True)
    db_path = root / "service.db"
    conn = _connect(db_path)
    try:
        conn.executescript(_SCHEMA)
        conn.commit()
    finally:
        conn.close()
    return db_path, blob_dir


def _connect(db_path) -> sqlite3.Connection:
    conn = sqlite3.connect(str(db_path), timeout=BUSY_TIMEOUT_MS / 1000.0,
                           check_same_thread=False)
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
    conn.row_factory = sqlite3.Row
    return conn


def result_key(cache_key) -> str:
    """Stable cross-process text key for a :meth:`JobSpec.cache_key`
    tuple (primitives only, so ``repr`` is canonical)."""
    return hashlib.sha256(repr(cache_key).encode("utf-8")).hexdigest()


class _SqliteBase:
    """One locked connection per store instance.

    SQLite serializes writers anyway; funnelling each store's traffic
    through a single connection under a process lock keeps transaction
    scoping simple and sidesteps per-thread connection pools.  The lock
    is a *leaf* lock — no store method ever calls back into manager or
    registry code while holding it.
    """

    backend = "sqlite"

    def __init__(self, db_path) -> None:
        self._db_path = Path(db_path)
        self._conn = _connect(db_path)
        self._lock = threading.Lock()

    def close(self) -> None:
        with self._lock:
            self._conn.close()


def _record_from_row(row: sqlite3.Row) -> JobRecord:
    return JobRecord(
        id=row["id"],
        spec=json.loads(row["spec"]),
        state=row["state"],
        created_at=row["created_at"],
        queued_at=row["queued_at"],
        started_at=row["started_at"],
        finished_at=row["finished_at"],
        result=json.loads(row["result"]) if row["result"] is not None else None,
        error=row["error"],
        cached=bool(row["cached"]),
        attempt=row["attempt"],
        attempts=json.loads(row["attempts"]),
        trace_id=row["trace_id"],
        traceparent=row["traceparent"],
        cancel_requested=bool(row["cancel_requested"]),
        worker=row["worker"],
        lease_expires_at=row["lease_expires_at"],
        run_log=pickle.loads(row["run_log"]) if row["run_log"] is not None else None,
        version=row["version"],
    )


def _record_params(rec: JobRecord) -> dict:
    return {
        "num": rec.numeric_id,
        "id": rec.id,
        "state": rec.state,
        "spec": json.dumps(rec.spec, sort_keys=True),
        "created_at": rec.created_at,
        "queued_at": rec.queued_at,
        "started_at": rec.started_at,
        "finished_at": rec.finished_at,
        "result": json.dumps(rec.result, sort_keys=True) if rec.result is not None else None,
        "error": rec.error,
        "cached": int(rec.cached),
        "attempt": rec.attempt,
        "attempts": json.dumps(rec.attempts),
        "trace_id": rec.trace_id,
        "traceparent": rec.traceparent,
        "cancel_requested": int(rec.cancel_requested),
        "worker": rec.worker,
        "lease_expires_at": rec.lease_expires_at,
        "run_log": pickle.dumps(rec.run_log) if rec.run_log is not None else None,
    }


_UPDATE_FIELDS = (
    "state", "spec", "created_at", "queued_at", "started_at", "finished_at",
    "result", "error", "cached", "attempt", "attempts", "trace_id",
    "traceparent", "cancel_requested", "worker", "lease_expires_at", "run_log",
)
_UPDATE_SQL = ", ".join(f"{f} = :{f}" for f in _UPDATE_FIELDS)


class SqliteJobStore(_SqliteBase):
    """The durable job table (see module docstring for semantics)."""

    def next_job_id(self) -> str:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT value FROM counters WHERE name='job_id'"
                ).fetchone()
                nxt = (row["value"] if row else 0) + 1
                self._conn.execute(
                    "INSERT INTO counters(name, value) VALUES ('job_id', :v) "
                    "ON CONFLICT(name) DO UPDATE SET value = :v",
                    {"v": nxt},
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
            return f"job-{nxt:06d}"

    def create(self, record: JobRecord) -> JobRecord:
        record.version = 1
        params = _record_params(record)
        params["version"] = 1
        with self._lock:
            self._conn.execute(
                "INSERT INTO jobs (num, id, state, spec, created_at, queued_at, "
                "started_at, finished_at, result, error, cached, attempt, attempts, "
                "trace_id, traceparent, cancel_requested, worker, lease_expires_at, "
                "run_log, version) "
                "VALUES (:num, :id, :state, :spec, :created_at, :queued_at, "
                ":started_at, :finished_at, :result, :error, :cached, :attempt, "
                ":attempts, :trace_id, :traceparent, :cancel_requested, :worker, "
                ":lease_expires_at, :run_log, :version)",
                params,
            )
            self._conn.commit()
        return replace(record)

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise UnknownJobError(job_id)
        return _record_from_row(row)

    def save(self, record: JobRecord) -> JobRecord:
        params = _record_params(record)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT version FROM jobs WHERE id = ?", (record.id,)
                ).fetchone()
                if row is None:
                    self._conn.rollback()
                    raise UnknownJobError(record.id)
                params["version"] = row["version"] + 1
                self._conn.execute(
                    f"UPDATE jobs SET {_UPDATE_SQL}, version = :version "
                    "WHERE id = :id",
                    params,
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        record.version = params["version"]
        return replace(record)

    def delete(self, job_id: str) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM jobs WHERE id = ?", (job_id,))
            self._conn.commit()

    def list(
        self,
        state: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Tuple[List[JobRecord], Optional[str]]:
        clauses, params = [], []
        if state is not None:
            clauses.append("state = ?")
            params.append(state)
        if cursor is not None:
            clauses.append("num > ?")
            params.append(int(cursor.rsplit("-", 1)[1]))
        sql = "SELECT * FROM jobs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY num"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit + 1)
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        next_cursor = None
        if limit is not None and len(rows) > limit:
            rows = rows[:limit]
            next_cursor = rows[-1]["id"]
        return [_record_from_row(r) for r in rows], next_cursor

    def count_by_state(self) -> Dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS c FROM jobs GROUP BY state"
            ).fetchall()
        return {row["state"]: row["c"] for row in rows}

    def claim(
        self, job_id: str, worker: str, lease_expires_at: float
    ) -> Optional[JobRecord]:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cur = self._conn.execute(
                    "UPDATE jobs SET state='running', worker=?, lease_expires_at=?, "
                    "started_at=?, version=version+1 "
                    "WHERE id=? AND state='queued' AND cancel_requested=0",
                    (worker, lease_expires_at, time.time(), job_id),
                )
                won = cur.rowcount == 1
                row = (
                    self._conn.execute(
                        "SELECT * FROM jobs WHERE id = ?", (job_id,)
                    ).fetchone()
                    if won
                    else None
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return _record_from_row(row) if row is not None else None

    def heartbeat(
        self, job_id: str, worker: str, lease_expires_at: float
    ) -> Optional[JobRecord]:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cur = self._conn.execute(
                    "UPDATE jobs SET lease_expires_at=?, version=version+1 "
                    "WHERE id=? AND state='running' AND worker=?",
                    (lease_expires_at, job_id, worker),
                )
                won = cur.rowcount == 1
                row = (
                    self._conn.execute(
                        "SELECT * FROM jobs WHERE id = ?", (job_id,)
                    ).fetchone()
                    if won
                    else None
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return _record_from_row(row) if row is not None else None

    def finish(self, record: JobRecord, worker: str) -> Optional[JobRecord]:
        record = replace(record, worker=None, lease_expires_at=None)
        params = _record_params(record)
        params["expected_worker"] = worker
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cur = self._conn.execute(
                    f"UPDATE jobs SET {_UPDATE_SQL}, version = version + 1 "
                    "WHERE id = :id AND state = 'running' AND worker = :expected_worker",
                    params,
                )
                won = cur.rowcount == 1
                row = (
                    self._conn.execute(
                        "SELECT * FROM jobs WHERE id = :id", params
                    ).fetchone()
                    if won
                    else None
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return _record_from_row(row) if row is not None else None

    def set_cancel_requested(self, job_id: str) -> JobRecord:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cur = self._conn.execute(
                    "UPDATE jobs SET cancel_requested=1, version=version+1 "
                    "WHERE id=? AND cancel_requested=0",
                    (job_id,),
                )
                del cur
                row = self._conn.execute(
                    "SELECT * FROM jobs WHERE id = ?", (job_id,)
                ).fetchone()
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        if row is None:
            raise UnknownJobError(job_id)
        return _record_from_row(row)

    def recover_orphans(self, now: float, max_requeues: int = 5) -> List[JobRecord]:
        recovered: List[JobRecord] = []
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE state='running' "
                    "AND lease_expires_at IS NOT NULL AND lease_expires_at < ? "
                    "ORDER BY num",
                    (now,),
                ).fetchall()
                for row in rows:
                    rec = _record_from_row(row)
                    rec.attempts.append(_orphan_note(rec, now))
                    if rec.cancel_requested:
                        rec.state = "cancelled"
                        rec.finished_at = now
                    elif rec.attempt + 1 > max_requeues:
                        rec.state = "failed"
                        rec.error = (
                            f"orphaned {rec.attempt + 1} times "
                            f"(requeue budget {max_requeues} exhausted)"
                        )
                        rec.finished_at = now
                    else:
                        rec.state = "queued"
                        rec.attempt += 1
                        rec.queued_at = now
                        rec.started_at = None
                    rec.worker = None
                    rec.lease_expires_at = None
                    rec.version += 1
                    params = _record_params(rec)
                    params["version"] = rec.version
                    self._conn.execute(
                        f"UPDATE jobs SET {_UPDATE_SQL}, version = :version "
                        "WHERE id = :id",
                        params,
                    )
                    recovered.append(rec)
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return recovered

    def prune_terminal(self, max_history: int) -> List[str]:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                rows = self._conn.execute(
                    "SELECT id FROM jobs "
                    "WHERE state IN ('done', 'failed', 'cancelled') ORDER BY num"
                ).fetchall()
                excess = len(rows) - max_history
                pruned = [r["id"] for r in rows[:excess]] if excess > 0 else []
                for jid in pruned:
                    self._conn.execute("DELETE FROM jobs WHERE id = ?", (jid,))
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return pruned


class SqliteWorkQueue(_SqliteBase):
    """Bounded FIFO over a SQLite table, shared across processes.

    ``pop`` polls (SQLite has no cross-process condition variables):
    each probe atomically deletes the head row under ``BEGIN
    IMMEDIATE``, sleeping briefly between empty probes until the
    timeout lapses.  The poll interval bounds added latency at ~50 ms,
    which is noise next to a solver run.
    """

    POLL_INTERVAL_S = 0.05

    def __init__(self, db_path, limit: int = 64) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        super().__init__(db_path)
        self.limit = limit

    def push(self, job_id: str) -> None:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                depth = self._conn.execute(
                    "SELECT COUNT(*) AS c FROM work_queue"
                ).fetchone()["c"]
                if depth >= self.limit:
                    self._conn.rollback()
                    raise QueueFullError(
                        f"job queue full ({self.limit} queued); retry later"
                    )
                self._conn.execute(
                    "INSERT INTO work_queue (job_id) VALUES (?)", (job_id,)
                )
                self._conn.commit()
            except QueueFullError:
                raise
            except BaseException:
                self._conn.rollback()
                raise

    def _pop_once(self) -> Optional[str]:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT seq, job_id FROM work_queue ORDER BY seq LIMIT 1"
                ).fetchone()
                if row is not None:
                    self._conn.execute(
                        "DELETE FROM work_queue WHERE seq = ?", (row["seq"],)
                    )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return row["job_id"] if row is not None else None

    def pop(self, timeout: float = 0.1) -> Optional[str]:
        deadline = time.monotonic() + timeout
        while True:
            job_id = self._pop_once()
            if job_id is not None:
                return job_id
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            time.sleep(min(self.POLL_INTERVAL_S, remaining))

    def depth(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) AS c FROM work_queue"
            ).fetchone()["c"]

    def __contains__(self, job_id: object) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM work_queue WHERE job_id = ? LIMIT 1", (job_id,)
            ).fetchone()
        return row is not None


class SqliteDatasetStore(_SqliteBase):
    """Dataset descriptors in SQLite, point blobs as fingerprint-named
    ``.npy`` files (content-addressed: same bytes → same file)."""

    def __init__(self, db_path, blob_dir) -> None:
        super().__init__(db_path)
        self._blob_dir = Path(blob_dir)

    def put(self, record: DatasetRecord, points: Optional[np.ndarray]) -> DatasetRecord:
        if points is not None:
            self._write_blob(record.fingerprint, points)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                existing = self._conn.execute(
                    "SELECT * FROM datasets WHERE id = ?", (record.id,)
                ).fetchone()
                if existing is None:
                    self._conn.execute(
                        "INSERT INTO datasets (id, fingerprint, kind, params, n, "
                        "metric_name, created_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
                        (
                            record.id,
                            record.fingerprint,
                            record.kind,
                            json.dumps(record.params, sort_keys=True),
                            record.n,
                            record.metric_name,
                            record.created_at,
                        ),
                    )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        if existing is not None:
            return _dataset_from_row(existing)
        return record

    def _write_blob(self, fingerprint: str, points: np.ndarray) -> None:
        path = self._blob_dir / f"{fingerprint}.npy"
        if path.exists():
            return
        tmp = path.parent / f".{fingerprint}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as fh:  # np.save appends .npy to bare paths
                np.save(fh, np.asarray(points, dtype=np.float64))
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    def get(self, ds_id: str) -> Optional[DatasetRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM datasets WHERE id = ?", (ds_id,)
            ).fetchone()
        return _dataset_from_row(row) if row is not None else None

    def load_points(self, fingerprint: str) -> Optional[np.ndarray]:
        path = self._blob_dir / f"{fingerprint}.npy"
        if not path.exists():
            return None
        return np.load(path)

    def list(self) -> List[DatasetRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM datasets ORDER BY seq"
            ).fetchall()
        return [_dataset_from_row(r) for r in rows]

    def find_fingerprint(self, fingerprint: str) -> Optional[DatasetRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM datasets WHERE fingerprint = ? ORDER BY seq LIMIT 1",
                (fingerprint,),
            ).fetchone()
        return _dataset_from_row(row) if row is not None else None

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) AS c FROM datasets"
            ).fetchone()["c"]

    def __contains__(self, ds_id: object) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM datasets WHERE id = ?", (ds_id,)
            ).fetchone()
        return row is not None


def _dataset_from_row(row: sqlite3.Row) -> DatasetRecord:
    return DatasetRecord(
        id=row["id"],
        fingerprint=row["fingerprint"],
        kind=row["kind"],
        params=json.loads(row["params"]),
        n=row["n"],
        metric_name=row["metric_name"],
        created_at=row["created_at"],
    )


class SqliteResultStore(_SqliteBase):
    """Durable ``cache_key → (payload, run_log)`` shared by every
    process on the state dir.

    Hit/miss counters are per-process (they describe *this* instance's
    traffic, mirroring :class:`~repro.service.cache.ResultCache`);
    the entry count is global.  Eviction is FIFO by insertion order,
    like the in-memory cache.
    """

    def __init__(self, db_path, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        super().__init__(db_path)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def get(self, key) -> Optional[Tuple[dict, object]]:
        text_key = result_key(key)
        with self._lock:
            row = self._conn.execute(
                "SELECT payload, run_log FROM results WHERE key = ?", (text_key,)
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            self.hits += 1
        payload = json.loads(row["payload"])
        run_log = pickle.loads(row["run_log"]) if row["run_log"] is not None else None
        return payload, run_log

    def put(self, key, payload: dict, run_log=None) -> None:
        text_key = result_key(key)
        blob = pickle.dumps(run_log) if run_log is not None else None
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                # first writer wins: determinism makes later payloads identical
                self._conn.execute(
                    "INSERT OR IGNORE INTO results (key, payload, run_log) "
                    "VALUES (?, ?, ?)",
                    (text_key, json.dumps(payload, sort_keys=True), blob),
                )
                self._conn.execute(
                    "DELETE FROM results WHERE seq NOT IN ("
                    "  SELECT seq FROM results ORDER BY seq DESC LIMIT ?)",
                    (self.max_entries,),
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) AS c FROM results"
            ).fetchone()["c"]

    def __contains__(self, key: object) -> bool:
        text_key = result_key(key)
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE key = ?", (text_key,)
            ).fetchone()
        return row is not None

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM results")
            self._conn.commit()

    def stats(self) -> dict:
        with self._lock:
            entries = self._conn.execute(
                "SELECT COUNT(*) AS c FROM results"
            ).fetchone()["c"]
            total = self.hits + self.misses
            return {
                "entries": entries,
                "max_entries": self.max_entries,
                "hits_total": self.hits,
                "misses_total": self.misses,
                "hit_ratio": (self.hits / total) if total else 0.0,
            }


def _analysis_from_row(row: sqlite3.Row) -> AnalysisRecord:
    return AnalysisRecord(
        id=row["id"],
        spec=json.loads(row["spec"]),
        state=row["state"],
        created_at=row["created_at"],
        finished_at=row["finished_at"],
        cell_job_ids=json.loads(row["cell_job_ids"]),
        report=json.loads(row["report"]) if row["report"] is not None else None,
        error=row["error"],
        trace_id=row["trace_id"],
        traceparent=row["traceparent"],
        version=row["version"],
    )


def _analysis_params(rec: AnalysisRecord) -> dict:
    return {
        "num": rec.numeric_id,
        "id": rec.id,
        "state": rec.state,
        "spec": json.dumps(rec.spec, sort_keys=True),
        "created_at": rec.created_at,
        "finished_at": rec.finished_at,
        "cell_job_ids": json.dumps(list(rec.cell_job_ids)),
        "report": (
            json.dumps(rec.report, sort_keys=True) if rec.report is not None else None
        ),
        "error": rec.error,
        "trace_id": rec.trace_id,
        "traceparent": rec.traceparent,
    }


_ANALYSIS_FIELDS = (
    "state", "spec", "created_at", "finished_at", "cell_job_ids", "report",
    "error", "trace_id", "traceparent",
)
_ANALYSIS_UPDATE_SQL = ", ".join(f"{f} = :{f}" for f in _ANALYSIS_FIELDS)


class SqliteAnalysisStore(_SqliteBase):
    """The durable analysis-sweep table.

    Same transaction discipline as :class:`SqliteJobStore`; the one CAS
    is :meth:`finalize`, a conditional ``UPDATE … WHERE state =
    'running'`` — two sweepers racing to attach the report serialize at
    the database and exactly one wins.
    """

    def next_analysis_id(self) -> str:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT value FROM counters WHERE name='analysis_id'"
                ).fetchone()
                nxt = (row["value"] if row else 0) + 1
                self._conn.execute(
                    "INSERT INTO counters(name, value) VALUES ('analysis_id', :v) "
                    "ON CONFLICT(name) DO UPDATE SET value = :v",
                    {"v": nxt},
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
            return f"an-{nxt:06d}"

    def create(self, record: AnalysisRecord) -> AnalysisRecord:
        record.version = 1
        params = _analysis_params(record)
        params["version"] = 1
        with self._lock:
            self._conn.execute(
                "INSERT INTO analyses (num, id, state, spec, created_at, "
                "finished_at, cell_job_ids, report, error, trace_id, traceparent, "
                "version) "
                "VALUES (:num, :id, :state, :spec, :created_at, :finished_at, "
                ":cell_job_ids, :report, :error, :trace_id, :traceparent, :version)",
                params,
            )
            self._conn.commit()
        return replace(record)

    def get(self, analysis_id: str) -> AnalysisRecord:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM analyses WHERE id = ?", (analysis_id,)
            ).fetchone()
        if row is None:
            raise UnknownAnalysisError(analysis_id)
        return _analysis_from_row(row)

    def save(self, record: AnalysisRecord) -> AnalysisRecord:
        params = _analysis_params(record)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT version FROM analyses WHERE id = ?", (record.id,)
                ).fetchone()
                if row is None:
                    self._conn.rollback()
                    raise UnknownAnalysisError(record.id)
                params["version"] = row["version"] + 1
                self._conn.execute(
                    f"UPDATE analyses SET {_ANALYSIS_UPDATE_SQL}, "
                    "version = :version WHERE id = :id",
                    params,
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        record.version = params["version"]
        return replace(record)

    def delete(self, analysis_id: str) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM analyses WHERE id = ?", (analysis_id,))
            self._conn.commit()

    def list(
        self,
        state: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Tuple[List[AnalysisRecord], Optional[str]]:
        clauses, params = [], []
        if state is not None:
            clauses.append("state = ?")
            params.append(state)
        if cursor is not None:
            clauses.append("num > ?")
            params.append(int(cursor.rsplit("-", 1)[1]))
        sql = "SELECT * FROM analyses"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY num"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit + 1)
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        next_cursor = None
        if limit is not None and len(rows) > limit:
            rows = rows[:limit]
            next_cursor = rows[-1]["id"]
        return [_analysis_from_row(r) for r in rows], next_cursor

    def count_by_state(self) -> Dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS c FROM analyses GROUP BY state"
            ).fetchall()
        return {row["state"]: row["c"] for row in rows}

    def finalize(self, record: AnalysisRecord) -> Optional[AnalysisRecord]:
        params = _analysis_params(record)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cur = self._conn.execute(
                    f"UPDATE analyses SET {_ANALYSIS_UPDATE_SQL}, "
                    "version = version + 1 "
                    "WHERE id = :id AND state = 'running'",
                    params,
                )
                won = cur.rowcount == 1
                row = (
                    self._conn.execute(
                        "SELECT * FROM analyses WHERE id = :id", params
                    ).fetchone()
                    if won
                    else None
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return _analysis_from_row(row) if row is not None else None
