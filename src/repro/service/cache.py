"""Fingerprint-keyed result cache with hit/miss accounting.

Keys come from :meth:`repro.service.spec.JobSpec.cache_key` — the
dataset's content fingerprint plus every result-relevant parameter.
Because solver runs are deterministic and backend-invariant (the PR-2
guarantee), a cached entry is *the* answer for its key, not a stale
approximation: repeat submissions are O(1) lookups returning
bit-identical payloads.

Entries hold the JSON-safe result payload and the recorded
:class:`~repro.obs.record.RunLog` of the run that produced them, so
``GET /jobs/<id>/trace`` works for cache-served jobs too.  Eviction is
FIFO beyond ``max_entries``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional, Tuple


class ResultCache:
    """Thread-safe bounded mapping ``cache_key → (payload, run_log)``."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[dict, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Tuple[dict, object]]:
        """``(payload, run_log)`` for ``key``, counting a hit or miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return entry

    def put(self, key: Hashable, payload: dict, run_log=None) -> None:
        """Store a completed run (idempotent; first writer wins —
        determinism makes later payloads identical anyway)."""
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = (payload, run_log)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Counters for ``GET /stats``.

        Key names follow the service metric naming scheme — the
        ``*_total`` keys are the values behind ``repro_cache_hits_total``
        / ``repro_cache_misses_total`` on ``GET /metrics``, and
        ``hit_ratio`` backs the ``repro_cache_hit_ratio`` gauge (see
        ``docs/metrics.md``).
        """
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits_total": self.hits,
                "misses_total": self.misses,
                "hit_ratio": (self.hits / total) if total else 0.0,
            }
