"""In-process Python client for the clustering job service.

Stdlib-only (``urllib``), mirroring the HTTP surface one method per
route plus a blocking :meth:`ServiceClient.solve` convenience that
registers, submits, and waits::

    from repro.service import ServiceClient

    client = ServiceClient("http://localhost:8000")
    ds = client.register_workload("gaussian", n=2000, seed=0)
    job = client.submit(algorithm="kcenter", dataset=ds["id"], k=10)
    done = client.wait(job["id"])
    done["result"]["record"]["radius"]

Requests go to the versioned API (``/v1/…`` by default; the
``api_version`` knob pins another prefix, or ``""`` for the deprecated
legacy paths).  HTTP error responses raise :class:`ServiceError`
carrying the status, the machine-readable error ``code`` from the
server's uniform envelope ``{"error": {"code", "message",
"request_id"}}``, and the message — a full queue surfaces as
``ServiceError`` with ``code == "queue_full"``.

The transport is fault-tolerant: transient failures — dropped or
refused connections, and responses whose error *code* marks them
transient (``queue_full``, ``unavailable``, ``injected_fault``) — are
retried with capped exponential backoff, honouring the server's
``Retry-After`` header when present.  Other errors (400, 404, 409, …)
raise immediately: they are answers, not faults.
:meth:`ServiceClient.wait` additionally survives a server restart
mid-poll, as long as the new server comes back (with the same job
state, e.g. a shared state directory) before the wait deadline.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Iterator, Optional
from urllib.parse import urlencode

import numpy as np

from repro.obs.logging import get_logger
from repro.obs.tracing import TraceContext, current_trace

#: error codes the transport treats as transient and retries;
#: ``transport`` is the client-side code for connection-level failures
RETRYABLE_CODES = ("queue_full", "unavailable", "injected_fault", "transport")

#: status fallback for pre-envelope servers that send no code
RETRYABLE_STATUSES = (429, 503)

_log = get_logger("repro.service.client")


class ServiceError(RuntimeError):
    """An HTTP error response from the service.

    ``code`` is the machine-readable identifier from the server's error
    envelope (``queue_full``, ``unknown_job``, …) — or ``"transport"``
    for connection-level failures that never got a response.  Retry
    decisions key off it; the human-facing ``message`` is display-only.
    ``request_id`` is the server-assigned id of the failed request
    (the request's trace id), echoed in the message so a pasted error
    is greppable in the server's structured log.
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None,
                 request_id: Optional[str] = None,
                 code: Optional[str] = None) -> None:
        text = f"HTTP {status}: {message}"
        if request_id:
            text += f" [request {request_id}]"
        super().__init__(text)
        self.status = status
        self.message = message
        #: machine-readable error code from the envelope (or "transport")
        self.code = code
        #: parsed Retry-After header (seconds), when the server sent one
        self.retry_after = retry_after
        #: server-assigned request/trace id, when the server sent one
        self.request_id = request_id

    @property
    def retryable(self) -> bool:
        """Whether the transport may safely repeat the request."""
        if self.code is not None:
            return self.code in RETRYABLE_CODES
        return self.status in RETRYABLE_STATUSES


def _parse_error_body(raw: str, request_id: Optional[str]):
    """Extract ``(message, code, request_id)`` from an error body.

    Understands the uniform envelope ``{"error": {"code", "message",
    "request_id"}}`` and, for compatibility with pre-``/v1`` servers,
    the flat legacy shape ``{"error": "<message>"}``.
    """
    try:
        parsed = json.loads(raw)
    except json.JSONDecodeError:
        return raw, None, request_id
    if not isinstance(parsed, dict):
        return raw, None, request_id
    err = parsed.get("error")
    if isinstance(err, dict):
        return (
            err.get("message", raw),
            err.get("code"),
            err.get("request_id") or request_id,
        )
    if isinstance(err, str):
        return err, None, parsed.get("request_id", request_id)
    return raw, None, request_id


class ServiceClient:
    """Thin JSON client bound to one service base URL.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running service.
    timeout:
        Per-request socket timeout, seconds.
    retries:
        Transient-failure retries per request (so a request is attempted
        at most ``retries + 1`` times).  Set 0 to fail fast.
    backoff_s / max_backoff_s:
        Initial and maximum backoff between attempts; doubles per
        retry, and the server's ``Retry-After`` overrides the computed
        delay when present.
    api_version:
        Path prefix for every route, default ``"v1"``.  Pass ``""`` to
        use the deprecated unversioned paths (e.g. against an old
        server).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        retries: int = 4,
        backoff_s: float = 0.1,
        max_backoff_s: float = 2.0,
        api_version: str = "v1",
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.api_version = api_version.strip("/")
        #: transient failures retried over this client's lifetime
        self.transport_retries = 0
        #: ``X-Request-Id`` of the most recent response (success or error)
        self.last_request_id: Optional[str] = None

    # -- transport ----------------------------------------------------------

    def _url_path(self, path: str) -> str:
        """Mount a route under the configured API version prefix."""
        if not self.api_version:
            return path
        return f"/{self.api_version}{path}"

    def _request_once(self, method: str, path: str, body: Optional[dict] = None,
                      trace: Optional[TraceContext] = None):
        url = f"{self.base_url}{self._url_path(path)}"
        data = None
        headers = {"Accept": "application/json"}
        if trace is not None:
            headers["traceparent"] = trace.to_traceparent()
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                raw = resp.read().decode()
                ctype = resp.headers.get("Content-Type", "")
                self.last_request_id = resp.headers.get("X-Request-Id")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode()
            request_id = exc.headers.get("X-Request-Id") if exc.headers else None
            message, code, request_id = _parse_error_body(raw, request_id)
            if not raw:
                message = exc.reason
            self.last_request_id = request_id
            retry_after = None
            header = exc.headers.get("Retry-After") if exc.headers else None
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
            raise ServiceError(exc.code, message, retry_after=retry_after,
                               request_id=request_id, code=code) from None
        if ctype.split(";")[0].strip() == "application/json":
            return json.loads(raw)
        return raw

    def _request(self, method: str, path: str, body: Optional[dict] = None):
        """One logical request, with transient-failure retries.

        Retried failures: connection errors (refused, reset, dropped
        mid-response — a restarting or fault-injected server) and
        responses whose envelope code is in :data:`RETRYABLE_CODES`.
        The service's handlers make these safe to repeat: injected
        faults fire *before* any state mutation, and a dropped response
        at worst re-submits an idempotent registration or creates a
        duplicate job record.

        Each logical request gets its own trace context — a child of
        the ambient :func:`~repro.obs.tracing.current_trace` when one is
        set, otherwise a fresh random root — and every attempt sends it
        as a W3C ``traceparent`` header, so server-side log lines for
        retried attempts share one trace id.
        """
        base = current_trace()
        ctx = (base.child("http-client") if base is not None
               else TraceContext.generate())
        delay = self.backoff_s
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(method, path, body, trace=ctx)
            except ServiceError as exc:
                if not exc.retryable or attempt >= self.retries:
                    raise
                wait = exc.retry_after if exc.retry_after is not None else delay
            except (urllib.error.URLError, ConnectionError, TimeoutError,
                    http.client.HTTPException) as exc:
                if attempt >= self.retries:
                    raise ServiceError(
                        0, f"transport failure after {attempt + 1} attempt(s): {exc}",
                        code="transport",
                    ) from exc
                wait = delay
            self.transport_retries += 1
            _log.warning(
                "transient failure; retrying request",
                extra={"http_method": method, "path": path,
                       "attempt": attempt + 1, "trace_id": ctx.trace_id,
                       "span_id": ctx.span_id},
            )
            time.sleep(min(wait, self.max_backoff_s))
            delay = min(delay * 2, self.max_backoff_s)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- service-level ------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """Raw Prometheus text exposition from ``GET /metrics``."""
        return self._request("GET", "/metrics")

    # -- datasets -----------------------------------------------------------

    def register_points(self, points, metric: str = "euclidean") -> dict:
        pts = np.asarray(points, dtype=np.float64).tolist()
        return self._request(
            "POST", "/datasets", {"points": pts, "metric": metric}
        )

    def register_workload(self, workload: str, n: int, seed: int = 0) -> dict:
        return self._request(
            "POST", "/datasets", {"workload": workload, "n": int(n), "seed": int(seed)}
        )

    def append_dataset(self, ds_id: str, points, metric: Optional[str] = None) -> dict:
        """Grow ``ds_id`` with a batch of points → the new chained
        version's summary (idempotent: same parent + same bytes = same
        child).  ``metric``, when given, must match the parent's
        (``409 metric_mismatch`` otherwise)."""
        pts = np.asarray(points, dtype=np.float64).tolist()
        body: dict = {"points": pts}
        if metric is not None:
            body["metric"] = metric
        return self._request("POST", f"/datasets/{ds_id}/append", body)

    def resolve_chain(self, ds_id: str) -> list:
        """The version chain of ``ds_id``, root first (ends at ``ds_id``)."""
        return self._request("GET", f"/datasets/{ds_id}/chain")["chain"]

    def datasets(self) -> list:
        return self._request("GET", "/datasets")["datasets"]

    def dataset(self, ds_id: str) -> dict:
        return self._request("GET", f"/datasets/{ds_id}")

    # -- jobs ---------------------------------------------------------------

    def submit(self, **spec) -> dict:
        """Submit a job spec (the ``POST /jobs`` body, as keywords)."""
        return self._request("POST", "/jobs", spec)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def _list_page(self, route: str, key: str, state: Optional[str] = None,
                   limit: Optional[int] = None,
                   cursor: Optional[str] = None) -> dict:
        """One raw page of a paginated listing route.

        Query params are URL-encoded (a state or cursor with reserved
        characters must not corrupt the query string; the server remains
        the validator), and a response missing the collection key —
        e.g. an empty filtered page from an older server — is
        normalized to ``{key: []}`` so callers can rely on the shape.
        """
        params = {}
        if state is not None:
            params["state"] = state
        if limit is not None:
            params["limit"] = int(limit)
        if cursor is not None:
            params["cursor"] = cursor
        path = route + ("?" + urlencode(params) if params else "")
        page = self._request("GET", path)
        page.setdefault(key, [])
        return page

    def _iter_pages(self, route: str, key: str, state: Optional[str] = None,
                    page_size: int = 256) -> Iterator[dict]:
        """Follow pagination cursors, defensively.

        Two edge cases matter when records transition state while we
        paginate a filtered listing:

        * a page may be *empty yet not final* (every record in the
          cursor window left the filtered state between pages) — we keep
          following ``next_cursor`` instead of treating emptiness as the
          end;
        * a buggy or proxied server could echo a non-advancing cursor —
          we stop rather than loop forever.
        """
        if int(page_size) < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        cursor: Optional[str] = None
        while True:
            page = self._list_page(route, key, state=state,
                                   limit=page_size, cursor=cursor)
            yield from page[key]
            next_cursor = page.get("next_cursor")
            if next_cursor is None or next_cursor == cursor:
                return
            cursor = next_cursor

    def jobs_page(self, state: Optional[str] = None,
                  limit: Optional[int] = None,
                  cursor: Optional[str] = None) -> dict:
        """One raw page of ``GET /jobs``: ``{"jobs": [...]}`` plus
        ``next_cursor`` when another page follows."""
        return self._list_page("/jobs", "jobs", state=state,
                               limit=limit, cursor=cursor)

    def iter_jobs(self, state: Optional[str] = None,
                  page_size: int = 256) -> Iterator[dict]:
        """Lazily iterate every job, following pagination cursors
        (stable submit-time order, oldest first)."""
        return self._iter_pages("/jobs", "jobs", state=state,
                                page_size=page_size)

    def jobs(self, state: Optional[str] = None,
             page_size: int = 256) -> list:
        """Every job as a list (cursor-following; see :meth:`iter_jobs`)."""
        return list(self.iter_jobs(state=state, page_size=page_size))

    #: alias matching the route name — ``client.list_jobs()`` follows
    #: pagination cursors transparently
    list_jobs = jobs

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def trace(self, job_id: str, fmt: str = "chrome"):
        """The job's obs trace: a parsed Chrome-trace dict, or raw JSONL
        text when ``fmt='jsonl'``."""
        return self._request("GET", f"/jobs/{job_id}/trace?format={fmt}")

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_s: float = 0.05,
        max_poll_s: float = 1.0,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns it.

        The poll interval starts at ``poll_s`` and backs off ×1.5 per
        poll up to ``max_poll_s``, so long waits don't hammer the
        service.  Transient transport failures (beyond what
        :meth:`_request` already retried — e.g. a server restarting
        mid-wait) do not abort the wait: polling continues until the
        deadline.  Non-transient HTTP errors (404 for a job the server
        genuinely does not know, …) still raise immediately.
        """
        deadline = time.monotonic() + timeout
        delay = poll_s
        last_state = "unknown"
        while True:
            try:
                job = self.job(job_id)
            except ServiceError as exc:
                if not exc.retryable and exc.status != 0:
                    raise
                job = None  # server unreachable/overloaded; keep polling
            if job is not None:
                last_state = job["state"]
                if last_state in ("done", "failed", "cancelled"):
                    return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {last_state} after {timeout}s"
                )
            time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
            delay = min(delay * 1.5, max_poll_s)

    # -- analyses -----------------------------------------------------------

    def submit_analysis(self, **spec) -> dict:
        """Submit an analysis sweep (the ``POST /analyses`` body — a
        :class:`~repro.sweeps.SweepSpec` — as keywords)."""
        return self._request("POST", "/analyses", spec)

    def analysis(self, analysis_id: str) -> dict:
        return self._request("GET", f"/analyses/{analysis_id}")

    def analyses_page(self, state: Optional[str] = None,
                      limit: Optional[int] = None,
                      cursor: Optional[str] = None) -> dict:
        """One raw page of ``GET /analyses``: ``{"analyses": [...]}``
        plus ``next_cursor`` when another page follows."""
        return self._list_page("/analyses", "analyses", state=state,
                               limit=limit, cursor=cursor)

    def iter_analyses(self, state: Optional[str] = None,
                      page_size: int = 256) -> Iterator[dict]:
        """Lazily iterate every analysis, following pagination cursors
        (stable submit-time order, oldest first)."""
        return self._iter_pages("/analyses", "analyses", state=state,
                                page_size=page_size)

    def analyses(self, state: Optional[str] = None,
                 page_size: int = 256) -> list:
        """Every analysis as a list (see :meth:`iter_analyses`)."""
        return list(self.iter_analyses(state=state, page_size=page_size))

    def analysis_report(self, analysis_id: str) -> dict:
        """The finished sweep's ranked report (``409``/``conflict``
        :class:`ServiceError` while it is still running)."""
        return self._request("GET", f"/analyses/{analysis_id}/report")

    def wait_analysis(
        self,
        analysis_id: str,
        timeout: float = 300.0,
        poll_s: float = 0.05,
        max_poll_s: float = 1.0,
    ) -> dict:
        """Poll until the analysis reaches a terminal state; returns it.

        Same contract as :meth:`wait`: transient transport failures keep
        polling until the deadline, genuine errors raise immediately.
        """
        deadline = time.monotonic() + timeout
        delay = poll_s
        last_state = "unknown"
        while True:
            try:
                record = self.analysis(analysis_id)
            except ServiceError as exc:
                if not exc.retryable and exc.status != 0:
                    raise
                record = None  # server unreachable/overloaded; keep polling
            if record is not None:
                last_state = record["state"]
                if last_state in ("done", "failed"):
                    return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"analysis {analysis_id} still {last_state} after {timeout}s"
                )
            time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
            delay = min(delay * 1.5, max_poll_s)

    # -- convenience --------------------------------------------------------

    def solve(self, points=None, *, workload: Optional[str] = None,
              n: Optional[int] = None, dataset_seed: int = 0,
              metric: str = "euclidean", timeout: float = 120.0,
              **spec) -> dict:
        """Register (points or workload) + submit + wait, in one call.

        Returns the terminal job record; raises :class:`ServiceError`
        for rejections and ``RuntimeError`` if the job failed.
        """
        if (points is None) == (workload is None):
            raise ValueError("pass exactly one of points= or workload=")
        if points is not None:
            ds = self.register_points(points, metric=metric)
        else:
            if n is None:
                raise ValueError("workload datasets need n=")
            ds = self.register_workload(workload, n, seed=dataset_seed)
        job = self.submit(dataset=ds["id"], **spec)
        done = self.wait(job["id"], timeout=timeout)
        if done["state"] != "done":
            raise RuntimeError(
                f"job {job['id']} ended {done['state']}: {done.get('error', '')}"
            )
        return done
