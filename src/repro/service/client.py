"""In-process Python client for the clustering job service.

Stdlib-only (``urllib``), mirroring the HTTP surface one method per
route plus a blocking :meth:`ServiceClient.solve` convenience that
registers, submits, and waits::

    from repro.service import ServiceClient

    client = ServiceClient("http://localhost:8000")
    ds = client.register_workload("gaussian", n=2000, seed=0)
    job = client.submit(algorithm="kcenter", dataset=ds["id"], k=10)
    done = client.wait(job["id"])
    done["result"]["record"]["radius"]

HTTP error responses raise :class:`ServiceError` carrying the status
code and the server's parsed ``{"error": ...}`` message — a full queue
surfaces as ``ServiceError`` with ``status == 429``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

import numpy as np


class ServiceError(RuntimeError):
    """An HTTP error response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Thin JSON client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[dict] = None):
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                raw = resp.read().decode()
                ctype = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode()
            try:
                message = json.loads(raw).get("error", raw)
            except (json.JSONDecodeError, AttributeError):
                message = raw or exc.reason
            raise ServiceError(exc.code, message) from None
        if ctype.split(";")[0].strip() == "application/json":
            return json.loads(raw)
        return raw

    # -- service-level ------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    # -- datasets -----------------------------------------------------------

    def register_points(self, points, metric: str = "euclidean") -> dict:
        pts = np.asarray(points, dtype=np.float64).tolist()
        return self._request(
            "POST", "/datasets", {"points": pts, "metric": metric}
        )

    def register_workload(self, workload: str, n: int, seed: int = 0) -> dict:
        return self._request(
            "POST", "/datasets", {"workload": workload, "n": int(n), "seed": int(seed)}
        )

    def datasets(self) -> list:
        return self._request("GET", "/datasets")["datasets"]

    def dataset(self, ds_id: str) -> dict:
        return self._request("GET", f"/datasets/{ds_id}")

    # -- jobs ---------------------------------------------------------------

    def submit(self, **spec) -> dict:
        """Submit a job spec (the ``POST /jobs`` body, as keywords)."""
        return self._request("POST", "/jobs", spec)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self, state: Optional[str] = None) -> list:
        path = "/jobs" if state is None else f"/jobs?state={state}"
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def trace(self, job_id: str, fmt: str = "chrome"):
        """The job's obs trace: a parsed Chrome-trace dict, or raw JSONL
        text when ``fmt='jsonl'``."""
        return self._request("GET", f"/jobs/{job_id}/trace?format={fmt}")

    def wait(self, job_id: str, timeout: float = 120.0, poll_s: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll_s)

    # -- convenience --------------------------------------------------------

    def solve(self, points=None, *, workload: Optional[str] = None,
              n: Optional[int] = None, dataset_seed: int = 0,
              metric: str = "euclidean", timeout: float = 120.0,
              **spec) -> dict:
        """Register (points or workload) + submit + wait, in one call.

        Returns the terminal job record; raises :class:`ServiceError`
        for rejections and ``RuntimeError`` if the job failed.
        """
        if (points is None) == (workload is None):
            raise ValueError("pass exactly one of points= or workload=")
        if points is not None:
            ds = self.register_points(points, metric=metric)
        else:
            if n is None:
                raise ValueError("workload datasets need n=")
            ds = self.register_workload(workload, n, seed=dataset_seed)
        job = self.submit(dataset=ds["id"], **spec)
        done = self.wait(job["id"], timeout=timeout)
        if done["state"] != "done":
            raise RuntimeError(
                f"job {job['id']} ended {done['state']}: {done.get('error', '')}"
            )
        return done
