"""Job specification: the validated description of one solver run.

A :class:`JobSpec` is what travels in a ``POST /jobs`` body and what the
worker pool executes.  Its :meth:`~JobSpec.cache_key` is the result
cache's identity — ``(dataset fingerprint, algorithm, and every
result-relevant parameter)``.  The execution backend and the timeout are
deliberately *excluded*: the PR-2 determinism guarantee makes results
bit-identical across ``serial``/``thread``/``process``/``remote``, so a
result computed on any backend serves submissions targeting every
backend — a spec may still pin ``backend=`` (e.g. ``'remote'``) to
choose where it runs without changing its cache identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.api import SOLVERS

#: solvers that accept an ``outliers`` budget
OUTLIER_SOLVERS = ("charikar_outliers", "malkomes_outliers")

#: partition strategies accepted by the facade
PARTITIONS = ("random", "block", "skewed")

#: analysis-constant presets understood by the runner
CONSTANT_PRESETS = ("practical", "paper")

#: tie-breaking modes accepted by the trim primitive (repro.core.trim)
TRIM_MODES = ("random", "id", "paper")


@dataclass
class JobSpec:
    """Parameters of one clustering job.

    ``dataset`` is a registry id (``ds-…``).  ``customers`` and
    ``suppliers`` are only meaningful (and then required) for
    ``algorithm='ksupplier'``.
    """

    algorithm: str
    dataset: str
    k: int = 1
    eps: float = 0.1
    machines: Optional[int] = None
    seed: int = 0
    partition: str = "random"
    trim_mode: str = "random"
    constants: str = "practical"
    customers: Optional[Sequence[int]] = None
    suppliers: Optional[Sequence[int]] = None
    #: outlier budget; only meaningful for the outlier-capable solvers
    outliers: Optional[int] = None
    #: re-solve an append-chained dataset version from its parent's
    #: solution (kcenter/diversity only); warm results legitimately
    #: differ from cold ones, so this *is* part of :meth:`cache_key`
    warm_start: bool = False
    #: execution backend override for this job (``None`` = the
    #: manager's default); excluded from :meth:`cache_key` — every
    #: backend is bit-identical, so results are shared across them
    backend: Optional[str] = None
    #: wall-clock budget; checked at MPC round granularity
    timeout_s: Optional[float] = None
    #: per-job retry budget; ``None`` defers to the manager's policy
    max_retries: Optional[int] = None
    #: free-form caller annotations, echoed back in job summaries
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.algorithm = str(self.algorithm).lower()
        if self.algorithm not in SOLVERS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; expected one of "
                f"{', '.join(sorted(SOLVERS))}"
            )
        self.k = int(self.k)
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        self.eps = float(self.eps)
        if self.eps <= 0:
            raise ValueError(f"eps must be > 0, got {self.eps}")
        if self.machines is not None:
            self.machines = int(self.machines)
            if self.machines < 1:
                raise ValueError(f"machines must be >= 1, got {self.machines}")
        self.seed = int(self.seed)
        if self.partition not in PARTITIONS:
            raise ValueError(
                f"unknown partition {self.partition!r}; expected one of "
                f"{', '.join(PARTITIONS)}"
            )
        if self.trim_mode not in TRIM_MODES:
            raise ValueError(
                f"unknown trim_mode {self.trim_mode!r}; expected one of "
                f"{', '.join(TRIM_MODES)}"
            )
        if self.constants not in CONSTANT_PRESETS:
            raise ValueError(
                f"unknown constants preset {self.constants!r}; expected one of "
                f"{', '.join(CONSTANT_PRESETS)}"
            )
        if self.backend is not None:
            from repro.mpc.executor import _ALIASES

            self.backend = str(self.backend).lower()
            if self.backend not in _ALIASES:
                raise ValueError(
                    f"unknown backend {self.backend!r}; expected one of "
                    f"{', '.join(sorted(set(_ALIASES.values())))}"
                )
        if self.timeout_s is not None:
            self.timeout_s = float(self.timeout_s)
            if self.timeout_s <= 0:
                raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.max_retries is not None:
            self.max_retries = int(self.max_retries)
            if self.max_retries < 0:
                raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.algorithm == "ksupplier":
            if self.customers is None or self.suppliers is None:
                raise ValueError("ksupplier jobs need customer and supplier id lists")
            self.customers = tuple(int(i) for i in self.customers)
            self.suppliers = tuple(int(i) for i in self.suppliers)
        elif self.customers is not None or self.suppliers is not None:
            raise ValueError(
                f"customers/suppliers only apply to ksupplier jobs, not {self.algorithm!r}"
            )
        if self.outliers is not None:
            if self.algorithm not in OUTLIER_SOLVERS:
                raise ValueError(
                    f"outliers only applies to "
                    f"{', '.join(OUTLIER_SOLVERS)} jobs, not {self.algorithm!r}"
                )
            self.outliers = int(self.outliers)
            if self.outliers < 0:
                raise ValueError(f"outliers must be >= 0, got {self.outliers}")
        self.warm_start = bool(self.warm_start)
        if self.warm_start and self.algorithm not in ("kcenter", "diversity"):
            raise ValueError(
                f"warm_start only applies to kcenter and diversity jobs, "
                f"not {self.algorithm!r}"
            )

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        """Build from a JSON body, rejecting unknown fields loudly."""
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown job field(s): {', '.join(unknown)}; "
                f"accepted: {', '.join(sorted(known))}"
            )
        if "algorithm" not in payload or "dataset" not in payload:
            raise ValueError("a job needs at least 'algorithm' and 'dataset'")
        return cls(**payload)

    def to_dict(self) -> dict:
        """JSON-safe echo of the spec."""
        out = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "k": self.k,
            "eps": self.eps,
            "machines": self.machines,
            "seed": self.seed,
            "partition": self.partition,
            "trim_mode": self.trim_mode,
            "constants": self.constants,
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
        }
        if self.backend is not None:
            out["backend"] = self.backend
        if self.customers is not None:
            out["customers"] = list(self.customers)
            out["suppliers"] = list(self.suppliers)
        if self.outliers is not None:
            out["outliers"] = self.outliers
        if self.warm_start:
            out["warm_start"] = True
        if self.tags:
            out["tags"] = dict(self.tags)
        return out

    def cache_key(self, fingerprint: str) -> Tuple:
        """Result-cache identity for this spec on the given dataset.

        Backend-irrelevant by construction: neither the execution
        backend nor the timeout/retry-budget/tags participate —
        recovered runs are bit-identical to undisturbed ones, so the
        retry knobs cannot change the result.
        """
        return (
            fingerprint,
            self.algorithm,
            self.k,
            self.eps,
            self.machines,
            self.seed,
            self.partition,
            self.trim_mode,
            self.constants,
            self.customers,
            self.suppliers,
            self.outliers,
            self.warm_start,
        )
