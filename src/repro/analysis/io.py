"""Experiment-result serialization (JSON and CSV).

The benchmark harness prints ASCII tables; this module persists the
same row dicts so downstream plotting or regression tracking can
consume them.  Only stdlib serialization — numpy scalars and arrays are
converted to plain Python first.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List

import numpy as np


def _plain(value: Any) -> Any:
    """Convert numpy scalars/arrays (recursively) to plain Python."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def write_json(rows: Iterable[Dict[str, Any]], path: str | Path, meta: Dict | None = None) -> Path:
    """Write rows (plus optional metadata) as a JSON document."""
    path = Path(path)
    doc = {"meta": _plain(meta or {}), "rows": [_plain(r) for r in rows]}
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def read_json(path: str | Path) -> Dict[str, Any]:
    """Read a document written by :func:`write_json`."""
    return json.loads(Path(path).read_text())


def write_csv(rows: Iterable[Dict[str, Any]], path: str | Path) -> Path:
    """Write rows as CSV; the header is the union of keys in first-seen
    order, missing cells are empty."""
    rows = [_plain(r) for r in rows]
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in columns})
    return path


def read_csv(path: str | Path) -> List[Dict[str, str]]:
    """Read a CSV written by :func:`write_csv` (values come back as str)."""
    with Path(path).open() as fh:
        return list(csv.DictReader(fh))
