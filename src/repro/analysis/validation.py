"""Solution validators.

Each ``verify_*`` function checks one algorithm's declared contract and
raises :class:`~repro.exceptions.InvalidSolutionError` with a precise
message on violation.  The integration tests run every MPC result
through these, so correctness is asserted against the *problem
definition*, never against the algorithm's own bookkeeping.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.results import MISResult
from repro.exceptions import InvalidSolutionError
from repro.metric.base import Metric


def verify_independent_set(metric: Metric, ids: Iterable[int], tau: float) -> None:
    """All pairwise distances must exceed ``tau``."""
    ids = np.unique(np.asarray(ids, dtype=np.int64))
    if ids.size < 2:
        return
    D = metric.pairwise(ids, ids)
    np.fill_diagonal(D, np.inf)
    worst = float(D.min())
    if worst <= tau:
        raise InvalidSolutionError(
            f"not an independent set in G_tau: min pairwise distance "
            f"{worst:.6g} <= tau={tau:.6g}"
        )


def verify_maximal_independent_set(
    metric: Metric, ids: Iterable[int], tau: float, universe: Iterable[int]
) -> None:
    """Independent, and every universe vertex within ``tau`` of the set."""
    ids = np.unique(np.asarray(ids, dtype=np.int64))
    universe = np.unique(np.asarray(universe, dtype=np.int64))
    verify_independent_set(metric, ids, tau)
    if universe.size == 0:
        return
    if ids.size == 0:
        raise InvalidSolutionError("empty set cannot be maximal on a nonempty universe")
    dmin = metric.dist_to_set(universe, ids)
    worst = float(dmin.max())
    if worst > tau:
        bad = int(universe[int(np.argmax(dmin))])
        raise InvalidSolutionError(
            f"not maximal: vertex {bad} at distance {worst:.6g} > tau={tau:.6g} "
            f"from the set could be added"
        )


def verify_k_bounded_mis(
    metric: Metric, result: MISResult, universe: Iterable[int]
) -> None:
    """The Definition 1 contract: independent, and (maximal with
    size ≤ k) or (size exactly k)."""
    ids = result.ids
    if np.unique(ids).size != ids.size:
        raise InvalidSolutionError("k-bounded MIS contains duplicate ids")
    if ids.size > result.k:
        raise InvalidSolutionError(
            f"k-bounded MIS has size {ids.size} > k={result.k}"
        )
    verify_independent_set(metric, ids, result.tau)
    if ids.size == result.k:
        return  # size exactly k: contract satisfied
    if not result.maximal:
        raise InvalidSolutionError(
            f"set of size {ids.size} < k={result.k} must be maximal, but the "
            f"algorithm did not claim maximality (via={result.terminated_via})"
        )
    verify_maximal_independent_set(metric, ids, result.tau, universe)


def verify_kcenter_solution(
    metric: Metric, centers: Iterable[int], k: int, claimed_radius: float, atol: float = 1e-9
) -> float:
    """At most k centers; the claimed radius covers every point.

    Returns the true radius."""
    centers = np.unique(np.asarray(centers, dtype=np.int64))
    if centers.size == 0 or centers.size > k:
        raise InvalidSolutionError(f"need 1..k centers, got {centers.size}")
    ids = np.arange(metric.n, dtype=np.int64)
    radius = float(metric.dist_to_set(ids, centers).max())
    if radius > claimed_radius + atol:
        raise InvalidSolutionError(
            f"claimed radius {claimed_radius:.6g} but true radius is {radius:.6g}"
        )
    return radius


def verify_diversity_solution(
    metric: Metric, ids: Iterable[int], k: int, claimed_diversity: float, atol: float = 1e-9
) -> float:
    """Exactly k distinct points with at least the claimed diversity.

    Returns the true diversity."""
    ids = np.asarray(ids, dtype=np.int64)
    if np.unique(ids).size != k:
        raise InvalidSolutionError(
            f"diversity solution must have exactly k={k} distinct points, "
            f"got {np.unique(ids).size}"
        )
    div = float(metric.diversity(ids))
    if div + atol < claimed_diversity:
        raise InvalidSolutionError(
            f"claimed diversity {claimed_diversity:.6g} but true value is {div:.6g}"
        )
    return div


def verify_ksupplier_solution(
    metric: Metric,
    customers: Iterable[int],
    suppliers: Iterable[int],
    opened: Iterable[int],
    k: int,
    claimed_radius: float,
    atol: float = 1e-9,
) -> float:
    """At most k suppliers, all drawn from the supplier set, covering
    every customer within the claimed radius.  Returns the true radius."""
    customers = np.unique(np.asarray(customers, dtype=np.int64))
    suppliers = np.unique(np.asarray(suppliers, dtype=np.int64))
    opened = np.unique(np.asarray(opened, dtype=np.int64))
    if opened.size == 0 or opened.size > k:
        raise InvalidSolutionError(f"need 1..k opened suppliers, got {opened.size}")
    if not np.isin(opened, suppliers).all():
        raise InvalidSolutionError("opened a facility that is not a supplier")
    radius = float(metric.dist_to_set(customers, opened).max())
    if radius > claimed_radius + atol:
        raise InvalidSolutionError(
            f"claimed radius {claimed_radius:.6g} but true radius is {radius:.6g}"
        )
    return radius
