"""Validation, ratio measurement, experiment running, and reporting."""

from repro.analysis.assignment import Assignment, assign_to_centers
from repro.analysis.experiments import Trial, aggregate, run_trials
from repro.analysis.lower_bounds import (
    diversity_upper_bound,
    kcenter_lower_bound,
    ksupplier_lower_bound,
)
from repro.analysis.ratios import (
    Ratio,
    diversity_ratio,
    kcenter_ratio,
    ksupplier_ratio,
)
from repro.analysis.reports import format_table
from repro.analysis.theory import (
    communication_bound_words,
    ladder_length,
    memory_bound_words,
    round_bound,
)
from repro.analysis.validation import (
    verify_diversity_solution,
    verify_independent_set,
    verify_k_bounded_mis,
    verify_kcenter_solution,
    verify_ksupplier_solution,
    verify_maximal_independent_set,
)

__all__ = [
    "Assignment",
    "assign_to_centers",
    "verify_independent_set",
    "verify_maximal_independent_set",
    "verify_k_bounded_mis",
    "verify_kcenter_solution",
    "verify_diversity_solution",
    "verify_ksupplier_solution",
    "kcenter_lower_bound",
    "diversity_upper_bound",
    "ksupplier_lower_bound",
    "Ratio",
    "kcenter_ratio",
    "diversity_ratio",
    "ksupplier_ratio",
    "round_bound",
    "ladder_length",
    "run_trials",
    "aggregate",
    "Trial",
    "format_table",
    "communication_bound_words",
    "memory_bound_words",
]
