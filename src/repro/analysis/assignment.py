"""Cluster-assignment utilities.

A k-center run returns centers; downstream users almost always want the
induced clustering too: which center serves each point, how big each
cluster is, and each cluster's local radius.  These helpers compute
that from any metric + center set (chunked, so they work at full n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.metric.base import Metric


@dataclass
class Assignment:
    """The clustering induced by a center set.

    Attributes
    ----------
    centers:
        The center ids, in the order labels refer to them.
    labels:
        For each point id ``i``, the index into :attr:`centers` of its
        nearest center.
    distances:
        ``d(i, centers[labels[i]])`` for every point.
    """

    centers: np.ndarray
    labels: np.ndarray
    distances: np.ndarray

    @property
    def radius(self) -> float:
        """The service radius ``r(V, centers)``."""
        return float(self.distances.max()) if self.distances.size else 0.0

    def cluster_sizes(self) -> np.ndarray:
        """Number of points served by each center."""
        return np.bincount(self.labels, minlength=self.centers.size)

    def cluster_radii(self) -> np.ndarray:
        """Local service radius of each center."""
        out = np.zeros(self.centers.size, dtype=np.float64)
        np.maximum.at(out, self.labels, self.distances)
        return out

    def members(self, center_index: int) -> np.ndarray:
        """Ids of the points served by ``centers[center_index]``."""
        return np.where(self.labels == center_index)[0].astype(np.int64)


def assign_to_centers(metric: Metric, centers: Iterable[int]) -> Assignment:
    """Assign every point of the ground set to its nearest center."""
    centers = np.unique(np.asarray(centers, dtype=np.int64))
    if centers.size == 0:
        raise ValueError("need at least one center")
    ids = np.arange(metric.n, dtype=np.int64)
    labels = np.empty(metric.n, dtype=np.int64)
    dists = np.empty(metric.n, dtype=np.float64)
    step = max(1, metric.chunk_budget // max(1, centers.size))
    for lo in range(0, metric.n, step):
        hi = min(metric.n, lo + step)
        D = metric.pairwise(ids[lo:hi], centers)
        labels[lo:hi] = D.argmin(axis=1)
        dists[lo:hi] = D[np.arange(hi - lo), labels[lo:hi]]
    return Assignment(centers=centers, labels=labels, distances=dists)
