"""Sweep runner: repeated seeded trials and aggregation.

A *trial* is one ``fn(seed) -> dict`` invocation; :func:`run_trials`
executes several seeds and :func:`aggregate` reduces any numeric field
to mean/std/min/max.  Used by the benchmark harness so every reported
number is an average over independent seeds, not a single run.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List


@dataclass
class Trial:
    """One trial's inputs and measured outputs."""

    seed: int
    metrics: Dict[str, float] = field(default_factory=dict)


def run_trials(
    fn: Callable[[int], Dict[str, float]],
    seeds: Iterable[int],
) -> List[Trial]:
    """Run ``fn`` once per seed, collecting its metric dict."""
    return [Trial(seed=s, metrics=dict(fn(s))) for s in seeds]


def aggregate(trials: List[Trial]) -> Dict[str, Dict[str, float]]:
    """Reduce every numeric metric across trials.

    Returns ``{metric: {mean, std, min, max, n}}``.  Non-numeric
    fields are skipped.
    """
    if not trials:
        return {}
    keys = set().union(*(t.metrics.keys() for t in trials))
    out: Dict[str, Dict[str, float]] = {}
    for key in sorted(keys):
        vals = [
            float(t.metrics[key])
            for t in trials
            if key in t.metrics and isinstance(t.metrics[key], (int, float))
        ]
        if not vals:
            continue
        out[key] = {
            "mean": statistics.fmean(vals),
            "std": statistics.pstdev(vals) if len(vals) > 1 else 0.0,
            "min": min(vals),
            "max": max(vals),
            "n": float(len(vals)),
        }
    return out
