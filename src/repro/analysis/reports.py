"""ASCII table rendering for the benchmark harness.

The harness prints each experiment as the rows/series a paper table or
figure would carry; keeping the renderer tiny and dependency-free means
benchmark output is stable, diffable text.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 10_000 or (value != 0 and abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Iterable[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 3,
    style: str = "ascii",
) -> str:
    """Render dict rows as a table.

    ``style='ascii'`` (default) gives a fixed-width console table;
    ``style='markdown'`` gives a GitHub-flavoured markdown table, which
    is how the EXPERIMENTS.md tables are regenerated.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen

    cells = [[_fmt(row.get(c, "-"), precision) for c in columns] for row in rows]

    parts: List[str] = []
    if title:
        parts.append(title)
    if style == "markdown":
        parts.append("| " + " | ".join(str(c) for c in columns) + " |")
        parts.append("|" + "|".join("---" for _ in columns) + "|")
        for row in cells:
            parts.append("| " + " | ".join(row) + " |")
        return "\n".join(parts)
    if style != "ascii":
        raise ValueError(f"unknown table style {style!r}")

    widths = [
        max(len(str(c)), *(len(r[i]) for r in cells)) for i, c in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
    )
    parts.extend([header, sep, body])
    return "\n".join(parts)
