"""Approximation-ratio measurement.

Ratios are reported against the tightest available denominator:

* an exact optimum (brute force) when the instance is small enough;
* a certified bound (:mod:`repro.analysis.lower_bounds`) otherwise.

Against a bound the reported ratio is an *upper bound* on the true
ratio, so "reported ≤ theorem factor" remains a sound pass criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.lower_bounds import (
    diversity_upper_bound,
    kcenter_lower_bound,
    ksupplier_lower_bound,
)
from repro.baselines.exact import exact_diversity, exact_kcenter
from repro.metric.base import Metric


@dataclass(frozen=True)
class Ratio:
    """A measured value, its denominator, and the denominator's kind."""

    value: float
    reference: float
    reference_kind: str  # 'exact' or 'bound'

    @property
    def ratio(self) -> float:
        if self.reference == 0.0:
            return 1.0 if self.value == 0.0 else float("inf")
        return self.value / self.reference


def _exact_feasible(n: int, k: int, budget: int = 200_000) -> bool:
    from math import comb

    return comb(n, k) <= budget


def kcenter_ratio(metric: Metric, radius: float, k: int) -> Ratio:
    """``radius / r*`` (exact) or ``radius / LB`` (certified bound)."""
    if _exact_feasible(metric.n, k):
        _, opt = exact_kcenter(metric, k)
        return Ratio(radius, opt, "exact")
    return Ratio(radius, kcenter_lower_bound(metric, k), "bound")


def diversity_ratio(metric: Metric, diversity: float, k: int) -> Ratio:
    """``div* / diversity`` (exact) or ``UB / diversity`` (bound).

    For maximization the ratio denominator is the achieved value;
    ``ratio ≥ 1`` and the theorem says ``ratio ≤ 2+ε``.
    """
    if _exact_feasible(metric.n, k):
        _, opt = exact_diversity(metric, k)
        return Ratio(opt, diversity, "exact")
    return Ratio(diversity_upper_bound(metric, k), diversity, "bound")


def ksupplier_ratio(
    metric: Metric,
    customers: Iterable[int],
    suppliers: Iterable[int],
    radius: float,
    k: int,
) -> Ratio:
    """``radius / LB`` against the certified k-supplier lower bound."""
    lb = ksupplier_lower_bound(metric, customers, suppliers, k)
    return Ratio(radius, lb, "bound")
