"""Instance-specific optimum bounds, cheap enough for any n.

Exact optima are only computable for tiny instances; these bounds make
approximation ratios measurable everywhere:

* k-center lower bound — ``r* ≥ div_{k+1}(V)/2`` (pigeonhole: two of
  any k+1 points share a center), and ``div_{k+1}(V) ≥ div(GMM_{k+1})``,
  so ``r* ≥ div(GMM_{k+1}(V)) / 2``.
* diversity upper bound — GMM is a 2-approximation, so
  ``div_k(V) ≤ 2·div(GMM_k(V))``.
* k-supplier lower bound — ``r* ≥ max_c d(c, S)`` (every customer must
  be served) and ``r* ≥ div-based k-center bound on C scaled by 1/2``
  (two of k+1 spread customers share a supplier ⇒ their distance
  ≤ 2r*).

Measured ratios against these bounds *over*-estimate the true ratio,
so "measured ratio ≤ theorem factor" remains a sound check.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.gmm import gmm
from repro.metric.base import Metric


def kcenter_lower_bound(metric: Metric, k: int) -> float:
    """A certified lower bound on the optimal k-center radius."""
    n = metric.n
    if k >= n:
        return 0.0
    ids = np.arange(n, dtype=np.int64)
    T = gmm(metric, ids, k + 1)
    return float(metric.diversity(T)) / 2.0


def diversity_upper_bound(metric: Metric, k: int) -> float:
    """A certified upper bound on the optimal k-diversity."""
    ids = np.arange(metric.n, dtype=np.int64)
    T = gmm(metric, ids, k)
    if T.size < 2:
        return float("inf")
    return 2.0 * float(metric.diversity(T))


def ksupplier_lower_bound(
    metric: Metric, customers: Iterable[int], suppliers: Iterable[int], k: int
) -> float:
    """A certified lower bound on the optimal k-supplier radius."""
    C = np.unique(np.asarray(customers, dtype=np.int64))
    S = np.unique(np.asarray(suppliers, dtype=np.int64))
    # every customer must reach some supplier
    reach = float(metric.dist_to_set(C, S).max())
    if C.size > k:
        spread = gmm(metric, C, k + 1)
        pigeon = float(metric.diversity(spread)) / 2.0
    else:
        pigeon = 0.0
    return max(reach, pigeon)
