"""Predicted theory envelopes the measurements are compared against.

The paper's bounds hide polylog factors and constants (Õ notation);
each function exposes the *shape* with an explicit slack constant so
the T5 communication experiment can check measured/predicted stays flat
as n, m, k sweep.
"""

from __future__ import annotations

import math


def _ln(n: int) -> float:
    return max(1.0, math.log(max(n, 2)))


def communication_bound_words(
    n: int, m: int, k: int, point_words: int = 2, slack: float = 1.0
) -> float:
    """Õ(mk) words of communication per machine: ``slack·m·k·ln(n)·w``."""
    return slack * m * k * _ln(n) * point_words


def memory_bound_words(
    n: int, m: int, k: int, point_words: int = 2, slack: float = 1.0
) -> float:
    """Õ(n/m + mk) words of memory per machine."""
    return slack * (n / m + m * k) * _ln(n) * point_words


def round_bound(gamma: float, slack: float = 1.0) -> float:
    """Theorem 13's O(1/γ) outer-round bound for m = n^γ."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    return slack / gamma


def ladder_length(epsilon: float, ceiling: float = 4.0) -> int:
    """Number of thresholds in the geometric ladder — the O(log 1/ε)
    factor in the round bounds of Theorems 3/17/18."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return int(math.ceil(math.log(ceiling) / math.log1p(epsilon))) + 1
