"""Theory constants from the paper, packaged so experiments can switch
between the *paper-literal* values and *practical* scaled-down values.

The paper's analysis (Lemmas 5–8, Theorem 14) fixes several constants:

* ``delta`` (δ) — the light/heavy threshold multiplier.  A vertex ``v``
  is *heavy* w.r.t. a sample ``S`` iff ``|N(v) ∩ S| ≥ δ ln n``
  (Definition 4).  The proofs need ``δ ≥ 18`` for Lemma 7 and
  ``δ ≥ 12/ε²`` for Lemma 8, so the paper-literal value is
  ``max(18, 12/ε²)``.
* ``light_blowup`` — Algorithm 3 bails out to the light-vertex path
  when ``|L| > 2 δ m k ln n`` (the ``2δ`` factor).
* ``pruning_factor`` — Algorithm 4 runs its pruning step when the
  expected sample size ``Σ 1/(2 p_v)`` exceeds ``10 k ln n``.
* ``mis_epsilon`` — the degree-approximation precision used *inside*
  Algorithm 4; the paper fixes it to ``1/6`` for Lemma 10's constants.

For simulable input sizes (n ≤ 10⁵) the literal constants make *every*
vertex light (``δ ln n`` is already ≈165 at n = 10⁴), so the heavy-vertex
estimation path would never execute.  The :meth:`TheoryConstants.practical`
preset scales the constants down so both paths are exercised while keeping
the structural dichotomy (light ⇒ exact degree, heavy ⇒ sampled estimate)
intact.  Every theorem-facing test runs under both presets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TheoryConstants:
    """Bundle of the analysis constants used across Algorithms 3 and 4.

    Attributes
    ----------
    delta:
        The δ of Definition 4 (light/heavy sample-degree threshold).
    light_blowup:
        Multiplier ``c`` in the light-path trigger ``|L| > c·δ·m·k·ln n``
        (the paper uses 2).
    pruning_factor:
        Multiplier ``c`` in the Algorithm 4 pruning trigger
        ``Σ 1/(2 p_v) > c·k·ln n`` (the paper uses 10).
    mis_epsilon:
        Degree-approximation precision ε used inside the k-bounded MIS
        (the paper fixes 1/6 in Section 5).
    log_floor:
        Lower clamp applied to ``ln n`` so thresholds stay positive on
        toy instances (n < 3).  Purely defensive; irrelevant
        asymptotically.
    """

    delta: float
    light_blowup: float = 2.0
    pruning_factor: float = 10.0
    mis_epsilon: float = 1.0 / 6.0
    log_floor: float = 1.0

    @classmethod
    def paper(cls, epsilon: float = 1.0 / 6.0) -> "TheoryConstants":
        """Paper-literal constants: ``δ = max(18, 12/ε²)``."""
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        return cls(delta=max(18.0, 12.0 / (epsilon * epsilon)), mis_epsilon=epsilon)

    @classmethod
    def practical(cls, epsilon: float = 1.0 / 6.0) -> "TheoryConstants":
        """Scaled-down constants that exercise both the heavy- and
        light-vertex code paths at simulable sizes (n ≈ 10³–10⁵)."""
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        return cls(
            delta=2.0,
            light_blowup=2.0,
            pruning_factor=10.0,
            mis_epsilon=epsilon,
        )

    def with_epsilon(self, epsilon: float) -> "TheoryConstants":
        """Return a copy with a different MIS degree-approximation ε."""
        return replace(self, mis_epsilon=epsilon)

    # -- derived thresholds -------------------------------------------------

    def ln_n(self, n: int) -> float:
        """``ln n`` clamped below by :attr:`log_floor`."""
        return max(self.log_floor, math.log(max(n, 2)))

    def heavy_threshold(self, n: int) -> float:
        """Sample-degree threshold ``δ ln n`` of Definition 4."""
        return self.delta * self.ln_n(n)

    def light_path_trigger(self, n: int, m: int, k: int) -> float:
        """Algorithm 3 switches to the light path when the number of
        light vertices exceeds this (``2 δ m k ln n`` in the paper)."""
        return self.light_blowup * self.delta * m * k * self.ln_n(n)

    def light_degree_bound(self, n: int, m: int) -> float:
        """Lemma 5's w.h.p. bound on the true degree of any light vertex
        (``2 δ m ln n``)."""
        return self.light_blowup * self.delta * m * self.ln_n(n)

    def pruning_trigger(self, n: int, k: int) -> float:
        """Algorithm 4 prunes when ``Σ 1/(2 p_v)`` exceeds this
        (``10 k ln n`` in the paper)."""
        return self.pruning_factor * k * self.ln_n(n)


#: Default constants used when the caller does not specify a preset.
DEFAULT_CONSTANTS = TheoryConstants.practical()
