"""First-class observability for the MPC simulator.

The package has three layers, mirroring how a production tracing stack
is built:

* **events** (:mod:`repro.obs.events`) — the structured records the
  simulator emits: one :class:`MessageEvent` per delivered message, one
  :class:`RoundRecord` per round barrier, one :class:`SpanRecord` per
  named algorithm phase (with round / word / wall-clock / oracle-call
  deltas captured at entry and exit);
* **hooks** (:mod:`repro.obs.observer`) — the :class:`Observer` API and
  the :class:`ObserverHub` every :class:`~repro.mpc.cluster.MPCCluster`
  owns as ``cluster.obs``.  ``step()`` and ``send()`` invoke the hub
  natively (no monkey-patching), and algorithms open phase spans with
  ``cluster.obs.span("kcenter/probe", ...)``;
* **sinks** (:mod:`repro.obs.record`, :mod:`repro.obs.export`) — the
  :class:`Recorder` observer collects everything into a :class:`RunLog`,
  which exports to JSONL, to the Chrome trace-event format
  (``chrome://tracing`` / Perfetto), or to an ASCII per-phase report.

A fourth layer, **metrics** (:mod:`repro.obs.metrics`), aggregates the
same events into a low-overhead :class:`MetricsRegistry` — counters,
gauges, and fixed-bucket histograms — fed by the always-attachable
:class:`MetricsObserver` and exposed as Prometheus text by the job
service's ``GET /metrics`` (see ``docs/metrics.md``).

Quickstart::

    from repro.obs import Recorder, phase_report, write_chrome_trace

    cluster = MPCCluster(metric, num_machines=8, seed=0)
    rec = Recorder.attach(cluster)
    mpc_kcenter(cluster, k=8)
    print(phase_report(rec.log))
    write_chrome_trace(rec.log, "run.json")   # open in ui.perfetto.dev

Span names follow the ``<algorithm>/<phase>`` convention of the message
tags (``kcenter/probe``, ``mis/round``, ``degree/estimate``, …); see
``docs/observability.md`` for the full catalogue.
"""

from repro.obs.events import (
    ExecSpanRecord,
    FaultEvent,
    MessageEvent,
    RoundRecord,
    SpanRecord,
)
from repro.obs.export import (
    canonical_chrome_trace,
    export_run,
    phase_report,
    read_jsonl,
    to_chrome_trace,
    trace_payload,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.logging import configure as configure_logging
from repro.obs.logging import get_logger
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    MetricsObserver,
    MetricsRegistry,
    default_registry,
)
from repro.obs.observer import Observer, ObserverHub
from repro.obs.record import Recorder, RunLog
from repro.obs.tracing import TraceContext, current_trace, use_trace

__all__ = [
    "ExecSpanRecord",
    "FaultEvent",
    "MessageEvent",
    "RoundRecord",
    "SpanRecord",
    "TraceContext",
    "current_trace",
    "use_trace",
    "configure_logging",
    "get_logger",
    "Observer",
    "ObserverHub",
    "Recorder",
    "RunLog",
    "MetricsObserver",
    "MetricsRegistry",
    "default_registry",
    "DEFAULT_TIME_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "write_jsonl",
    "read_jsonl",
    "canonical_chrome_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "phase_report",
    "export_run",
    "trace_payload",
]
