"""Structured event records emitted by the instrumentation layer.

Four record types cover the granularities the paper's theorems (and a
production deployment's failure modes) speak about:

* :class:`MessageEvent` — one delivered message (*where the words go*);
* :class:`RoundRecord` — one ``step()`` barrier (*where the rounds go*);
* :class:`SpanRecord` — one named algorithm phase, with counter
  snapshots taken at entry and exit so every round, word, message,
  wall-clock second, and distance-oracle call is attributable to a
  paper-level phase;
* :class:`FaultEvent` — one injected fault or one recovery action
  (*what went wrong and what fixed it*; see :mod:`repro.faults`);
* :class:`ExecSpanRecord` — one executor chunk executed in a forked
  worker process or on a remote worker agent, timed inside the worker
  and shipped back with its results (*where the worker-level
  parallelism goes*).

All records are plain dataclasses with a ``to_dict`` for serialization;
they carry no references back into the simulator, so a recorded run log
stays valid after the cluster is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class MessageEvent:
    """One delivered message (recorded at the round barrier)."""

    round_no: int
    src: int
    dst: int
    tag: str
    words: int

    def to_dict(self) -> dict:
        return {
            "round_no": self.round_no,
            "src": self.src,
            "dst": self.dst,
            "tag": self.tag,
            "words": self.words,
        }


@dataclass
class RoundRecord:
    """One completed ``step()``: totals plus the wall-clock interval."""

    round_no: int
    start_time: float
    end_time: float
    #: total words delivered this round (counted once, at senders)
    words: int
    messages: int
    #: worst sent+received load on any single machine this round
    max_load: int

    @property
    def duration_s(self) -> float:
        return self.end_time - self.start_time

    def to_dict(self) -> dict:
        return {
            "round_no": self.round_no,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "words": self.words,
            "messages": self.messages,
            "max_load": self.max_load,
        }


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, or one recovery action taken for a fault.

    ``injected=True`` records a fault going in (a worker kill, a
    transient machine fault, a synthetic 429); ``injected=False``
    records the system reacting (a chunk retry, a serial fallback, a
    machine-task retry succeeding, a job retry).  A healthy chaos run
    pairs every injection with a recovery; an exhausted one ends with
    an unpaired injection and a propagated error.
    """

    #: which layer: "executor", "machine", "remote", or "service"
    layer: str
    #: e.g. "worker_kill", "payload_corrupt", "machine_fault",
    #: "chunk_retry", "serial_fallback", "machine_retry", "job_retry"
    kind: str
    #: True = fault injection, False = recovery action
    injected: bool
    #: MPC round the fault belongs to (-1 when not round-scoped)
    round_no: int = -1
    #: what was hit / recovered: "machine 3", "chunk [1, 5]", a job id…
    target: str = ""
    #: retry attempt number, where meaningful
    attempt: int = 0
    #: free-form context (failure reason, backoff delay, …)
    detail: str = ""
    #: wall-clock stamp (``time.perf_counter`` domain, matching spans)
    time: float = 0.0

    def to_dict(self) -> dict:
        return {
            "layer": self.layer,
            "kind": self.kind,
            "injected": self.injected,
            "round_no": self.round_no,
            "target": self.target,
            "attempt": self.attempt,
            "detail": self.detail,
            "time": self.time,
        }


@dataclass
class SpanRecord:
    """One named algorithm phase with entry/exit counter snapshots.

    ``start_*``/``end_*`` pairs are cumulative cluster counters captured
    when the span opens and closes; the deltas (exposed as properties)
    are the phase's own inclusive cost — nested child spans are counted
    inside their parents, as in any tracing system.
    """

    name: str
    uid: int
    parent_uid: Optional[int]
    depth: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    #: distributed-trace identity (W3C shape; see :mod:`repro.obs.tracing`)
    #: — ``None`` when the run had no trace context installed
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    start_time: float = 0.0
    end_time: float = 0.0
    start_round: int = 0
    end_round: int = 0
    start_words: int = 0
    end_words: int = 0
    start_messages: int = 0
    end_messages: int = 0
    start_oracle_calls: int = 0
    end_oracle_calls: int = 0
    start_oracle_evaluations: int = 0
    end_oracle_evaluations: int = 0

    @property
    def duration_s(self) -> float:
        return self.end_time - self.start_time

    @property
    def rounds(self) -> int:
        """MPC rounds executed while the span was open."""
        return self.end_round - self.start_round

    @property
    def words(self) -> int:
        """Words delivered while the span was open."""
        return self.end_words - self.start_words

    @property
    def messages(self) -> int:
        return self.end_messages - self.start_messages

    @property
    def oracle_calls(self) -> int:
        """Distance-oracle kernel calls (0 unless the cluster's metric
        is a :class:`~repro.metric.oracle.CountingOracle`)."""
        return self.end_oracle_calls - self.start_oracle_calls

    @property
    def oracle_evaluations(self) -> int:
        return self.end_oracle_evaluations - self.start_oracle_evaluations

    def covers_round(self, round_no: int) -> bool:
        """True iff round ``round_no`` completed while this span was open."""
        return self.start_round < round_no <= self.end_round

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "uid": self.uid,
            "parent_uid": self.parent_uid,
            "depth": self.depth,
            "attrs": dict(self.attrs),
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "start_round": self.start_round,
            "end_round": self.end_round,
            "start_words": self.start_words,
            "end_words": self.end_words,
            "start_messages": self.start_messages,
            "end_messages": self.end_messages,
            "start_oracle_calls": self.start_oracle_calls,
            "end_oracle_calls": self.end_oracle_calls,
            "start_oracle_evaluations": self.start_oracle_evaluations,
            "end_oracle_evaluations": self.end_oracle_evaluations,
            "rounds": self.rounds,
            "words": self.words,
            "messages": self.messages,
            "oracle_calls": self.oracle_calls,
            "oracle_evaluations": self.oracle_evaluations,
            "duration_s": self.duration_s,
        }


@dataclass
class ExecSpanRecord:
    """One executor chunk, timed inside the worker that computed it.

    The driver derives the chunk's trace context *before* dispatching;
    the worker — a forked child of the process backend, or a socket
    agent of the remote backend (then ``name`` is ``"remote/chunk"``
    and the context travels as a ``traceparent`` header in the request
    frame) — stamps ``start_time``/``end_time`` and ships the record
    back with its results.  Merged into
    :attr:`~repro.obs.record.RunLog.exec_spans`, these are the
    "child spans under distinct pids" of the Chrome export — kept apart
    from the algorithm-phase :class:`SpanRecord` list so serial,
    process, and remote runs produce identical *phase* span sets.
    Forked children share the driver's ``time.perf_counter`` domain;
    remote agents do not, so their stamps order events only within one
    agent.
    """

    #: span name, e.g. ``"exec/chunk"`` or ``"remote/chunk"``
    name: str
    #: worker slot within the batch (also the synthetic Chrome pid - 1)
    worker: int
    #: executor batch number (monotonic per executor)
    batch: int
    #: chunk-retry attempt this execution belonged to (0 = first try)
    attempt: int
    #: number of tasks in the chunk
    chunk_size: int
    #: first task index of the strided chunk (-1 when unknown)
    first_index: int = -1
    #: the forked child's OS pid (diagnostic only — not deterministic)
    os_pid: int = 0
    start_time: float = 0.0
    end_time: float = 0.0
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    @property
    def duration_s(self) -> float:
        return self.end_time - self.start_time

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "worker": self.worker,
            "batch": self.batch,
            "attempt": self.attempt,
            "chunk_size": self.chunk_size,
            "first_index": self.first_index,
            "os_pid": self.os_pid,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "duration_s": self.duration_s,
        }
