"""Low-overhead, thread-safe metrics: counters, gauges, histograms.

The registry is the operational companion to the tracing layer: where
:class:`~repro.obs.record.Recorder` keeps *every* event of one run,
the registry keeps *aggregates* across runs — cheap enough to stay on
permanently, deterministic enough to diff between seeded executions.

Three design rules keep it that way:

* **fixed bucket bounds** — histograms never rebucket, so two runs of
  the same workload produce byte-identical layouts (only the duration
  observations differ; every *counter* is bit-reproducible for a fixed
  seed);
* **one lock per registry**, taken only on child creation and on
  snapshot/render; the hot path (``inc``/``observe`` on an
  already-created child) is a handful of attribute ops guarded by the
  child's own lock;
* **no background threads, no clocks** — the registry never samples by
  itself; values arrive from the :class:`MetricsObserver` hooks and
  from explicit sync points in the service layer.

Exposure paths (see ``docs/metrics.md`` for the full metric catalogue):

* ``GET /metrics`` on the job service — Prometheus text exposition
  (:meth:`MetricsRegistry.render_prometheus`), plus a ``metrics`` block
  in ``GET /stats``;
* ``repro <cmd> --metrics-out run.metrics.json`` — the JSON snapshot
  of the process-global registry, next to the trace output;
* :func:`repro.api.metrics_snapshot` / :func:`repro.api.metrics_reset`
  on the facade.

The :class:`MetricsObserver` feeds a registry natively from the
:class:`~repro.obs.observer.ObserverHub` events — rounds, words,
phase spans, oracle-call deltas, fault injections and recoveries —
without ever requesting per-message events (``wants_messages`` is
False, so the hub's zero-copy message fast path stays active).
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.events import FaultEvent, RoundRecord, SpanRecord
from repro.obs.observer import Observer

#: default histogram bounds for durations, seconds.  Fixed — never
#: derived from data — so output layout is deterministic.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _format_value(value: float) -> str:
    """Render a sample the Prometheus way: integers without a dot."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_string(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    """``key="value",...`` — the text between ``{`` and ``}``."""
    return ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )


class _Child:
    """One labeled series of a family; the object hot paths touch."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()


class CounterChild(_Child):
    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally-maintained monotonic tally (the service
        layer keeps its authoritative counts under its own lock and
        syncs them here at scrape time, so ``/stats`` and ``/metrics``
        can never disagree).  Never goes down."""
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class GaugeChild(_Child):
    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class HistogramChild(_Child):
    __slots__ = ("bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        super().__init__()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            for i, bound in enumerate(self.bounds):
                if v <= bound:
                    self._counts[i] += 1
                    break
            else:
                self._counts[-1] += 1
            self._sum += v
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le, cumulative_count)`` pairs, ``+Inf`` last."""
        with self._lock:
            out: List[Tuple[str, int]] = []
            running = 0
            for bound, n in zip(self.bounds, self._counts):
                running += n
                out.append((f"{bound:g}", running))
            out.append(("+Inf", running + self._counts[-1]))
            return out

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0


_CHILD_TYPES = {
    "counter": CounterChild,
    "gauge": GaugeChild,
    "histogram": HistogramChild,
}


class MetricFamily:
    """One named metric and its labeled children.

    A family with no label names has exactly one child and proxies the
    child's methods (``family.inc()``, ``family.observe()``, …), so the
    common unlabeled case needs no ``labels()`` call.
    """

    def __init__(self, name: str, kind: str, help: str = "",
                 label_names: Tuple[str, ...] = (),
                 buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> None:
        if kind not in _CHILD_TYPES:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if not self.label_names:
            self._children[()] = self._make_child()

    def _make_child(self) -> _Child:
        if self.kind == "histogram":
            return HistogramChild(self.buckets)
        return _CHILD_TYPES[self.kind]()

    def labels(self, *values: str, **kwargs: str):
        """The child for one label-value combination (created on first
        use).  Accepts positional values in ``label_names`` order or
        the same values as keywords."""
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by "
                                 "keyword, not both")
            try:
                values = tuple(str(kwargs.pop(n)) for n in self.label_names)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name} is missing label {exc.args[0]!r}"
                ) from None
            if kwargs:
                raise ValueError(
                    f"{self.name} got unexpected label(s) {sorted(kwargs)}"
                )
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} takes {len(self.label_names)} label value(s) "
                f"{self.label_names}, got {len(values)}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._children[values] = self._make_child()
            return child

    # unlabeled-family conveniences -------------------------------------------

    def _solo(self) -> _Child:
        if self.label_names:
            raise ValueError(
                f"{self.name} has labels {self.label_names}; "
                "use .labels(...) first"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)  # type: ignore[attr-defined]

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)  # type: ignore[attr-defined]

    def set(self, value: float) -> None:
        self._solo().set(value)  # type: ignore[attr-defined]

    def set_total(self, value: float) -> None:
        self._solo().set_total(value)  # type: ignore[attr-defined]

    def observe(self, value: float) -> None:
        self._solo().observe(value)  # type: ignore[attr-defined]

    @property
    def value(self) -> float:
        return self._solo().value  # type: ignore[attr-defined]

    # introspection ------------------------------------------------------------

    def children(self) -> List[Tuple[Tuple[str, ...], _Child]]:
        """Sorted ``(label_values, child)`` pairs — deterministic order."""
        with self._lock:
            return sorted(self._children.items())

    def _reset(self) -> None:
        with self._lock:
            for child in self._children.values():
                child._reset()


class MetricsRegistry:
    """A named set of metric families with deterministic output.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    twice for the same name returns the same family (and raises if the
    second ask disagrees on kind or labels — a misconfiguration, not a
    race to paper over).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _family(self, name: str, kind: str, help: str,
                label_names: Iterable[str],
                buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> MetricFamily:
        label_names = tuple(label_names)
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = MetricFamily(name, kind, help=help,
                                   label_names=label_names, buckets=buckets)
                self._families[name] = fam
                return fam
        if fam.kind != kind or fam.label_names != label_names:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind} with "
                f"labels {fam.label_names}; asked for {kind} with "
                f"labels {label_names}"
            )
        return fam

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "", labels: Iterable[str] = (),
                  buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets=tuple(buckets))

    def families(self) -> List[MetricFamily]:
        """Sorted by name — snapshot and render order."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def reset(self) -> None:
        """Zero every value; registrations (names, labels, buckets) stay."""
        for fam in self.families():
            fam._reset()

    # -- output ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe dump: ``{"counters": ..., "gauges": ..., "histograms": ...}``.

        Counter and gauge sections map metric name → {label-string →
        value}; the label string is ``""`` for unlabeled metrics and
        ``key="value",...`` otherwise (the exact text a Prometheus
        series would carry between braces).  For a fixed seed the
        ``counters`` section is bit-reproducible across runs; histogram
        *duration* observations are wall-clock and are not.
        """
        counters: Dict[str, Dict[str, float]] = {}
        gauges: Dict[str, Dict[str, float]] = {}
        histograms: Dict[str, Dict[str, dict]] = {}
        for fam in self.families():
            for values, child in fam.children():
                key = _label_string(fam.label_names, values)
                if fam.kind == "counter":
                    counters.setdefault(fam.name, {})[key] = child.value
                elif fam.kind == "gauge":
                    gauges.setdefault(fam.name, {})[key] = child.value
                else:
                    histograms.setdefault(fam.name, {})[key] = {
                        "buckets": {le: n for le, n in child.cumulative()},
                        "sum": child.sum,
                        "count": child.count,
                    }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render_prometheus(self) -> str:
        """The text exposition format, version 0.0.4."""
        lines: List[str] = []
        for fam in self.families():
            if fam.help:
                lines.append(f"# HELP {fam.name} {fam.help}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for values, child in fam.children():
                label_str = _label_string(fam.label_names, values)
                if fam.kind == "histogram":
                    for le, cum in child.cumulative():
                        inner = (label_str + "," if label_str else "") + f'le="{le}"'
                        lines.append(f"{fam.name}_bucket{{{inner}}} {cum}")
                    suffix = f"{{{label_str}}}" if label_str else ""
                    lines.append(f"{fam.name}_sum{suffix} {_format_value(child.sum)}")
                    lines.append(f"{fam.name}_count{suffix} {child.count}")
                else:
                    suffix = f"{{{label_str}}}" if label_str else ""
                    lines.append(f"{fam.name}{suffix} {_format_value(child.value)}")
        return "\n".join(lines) + "\n"

    def write_json(self, path) -> str:
        """Dump :meth:`snapshot` to ``path``; returns the path."""
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return str(path)


#: content type for the Prometheus exposition format
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry the facade and CLI feed."""
    return _default_registry


class MetricsObserver(Observer):
    """Feeds a :class:`MetricsRegistry` from the hub's native events.

    Attach one per cluster (``cluster.obs.add(MetricsObserver())``) —
    or let the facade do it, which it does for every ``solve_*`` call.
    Never asks for per-message events, so the hub's zero-listener
    message fast path stays active and the per-message overhead of
    metrics collection is exactly zero.
    """

    wants_messages = False

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        reg = registry if registry is not None else default_registry()
        self.registry = reg
        self._rounds = reg.counter(
            "repro_mpc_rounds_total", "MPC rounds executed")
        self._words = reg.counter(
            "repro_mpc_words_total", "words delivered across all rounds")
        self._messages = reg.counter(
            "repro_mpc_messages_total", "messages delivered across all rounds")
        self._round_duration = reg.histogram(
            "repro_round_duration_seconds", "wall-clock per MPC round barrier")
        self._phase_duration = reg.histogram(
            "repro_phase_duration_seconds",
            "inclusive wall-clock per algorithm phase span", labels=("phase",))
        self._phase_rounds = reg.counter(
            "repro_phase_rounds_total",
            "inclusive MPC rounds per algorithm phase span", labels=("phase",))
        self._oracle_calls = reg.counter(
            "repro_oracle_calls_total",
            "distance-oracle kernel calls (depth-0 span deltas)")
        self._oracle_evals = reg.counter(
            "repro_oracle_evaluations_total",
            "scalar distance evaluations (depth-0 span deltas)")
        self._injected = reg.counter(
            "repro_faults_injected_total", "injected faults",
            labels=("layer", "kind"))
        self._recovered = reg.counter(
            "repro_faults_recovered_total", "recovery actions taken",
            labels=("layer", "kind"))
        # remote-backend pool health: the same events that feed the
        # generic fault families, broken out under stable names so the
        # service's /metrics can be checked against recovery_stats()
        self._remote_chunks = reg.counter(
            "repro_remote_chunks_total",
            "chunks completed by remote worker agents")
        self._remote_redispatch = reg.counter(
            "repro_remote_redispatches_total",
            "remote chunks re-dispatched after a lost or failed attempt")
        self._remote_lost = reg.counter(
            "repro_remote_workers_lost_total",
            "remote worker agents declared dead")
        self._remote_duplicates = reg.counter(
            "repro_remote_duplicate_results_total",
            "late duplicate chunk results discarded (first-writer-wins)")
        self._remote_reships = reg.counter(
            "repro_remote_dataset_reships_total",
            "dataset re-ships to restarted workers (cache misses)")
        self._remote_fallbacks = reg.counter(
            "repro_remote_fallbacks_total",
            "whole-pool degradations to a local backend", labels=("to",))

    def on_round_end(self, record: RoundRecord) -> None:
        self._rounds.inc()
        self._words.inc(record.words)
        self._messages.inc(record.messages)
        self._round_duration.observe(record.duration_s)

    def on_span_end(self, span: SpanRecord) -> None:
        self._phase_duration.labels(span.name).observe(span.duration_s)
        if span.rounds:
            self._phase_rounds.labels(span.name).inc(span.rounds)
        if span.depth == 0:
            # depth-0 spans are disjoint, so their deltas sum without
            # double counting (same invariant RunLog.root_totals uses)
            if span.oracle_calls:
                self._oracle_calls.inc(span.oracle_calls)
            if span.oracle_evaluations:
                self._oracle_evals.inc(span.oracle_evaluations)

    def on_exec_span(self, span) -> None:
        if span.name == "remote/chunk":
            self._remote_chunks.inc()

    def on_fault(self, event: FaultEvent) -> None:
        fam = self._injected if event.injected else self._recovered
        fam.labels(event.layer, event.kind).inc()
        if event.layer != "remote" or event.injected:
            return
        if event.kind == "chunk_redispatch":
            self._remote_redispatch.inc()
        elif event.kind == "worker_lost":
            self._remote_lost.inc()
        elif event.kind == "duplicate_result":
            self._remote_duplicates.inc()
        elif event.kind == "dataset_reship":
            self._remote_reships.inc()
        elif event.kind == "local_fallback":
            self._remote_fallbacks.labels("process").inc()
        elif event.kind == "serial_fallback":
            self._remote_fallbacks.labels("serial").inc()


__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "CounterChild",
    "GaugeChild",
    "HistogramChild",
    "MetricFamily",
    "MetricsObserver",
    "MetricsRegistry",
    "default_registry",
]
