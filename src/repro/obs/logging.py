"""Structured logging: one JSON line per event, trace ids attached.

The repo's runtime layers (service, job manager, executor, cluster)
log through here instead of writing to stderr ad hoc.  Built on the
stdlib :mod:`logging` module:

* :func:`get_logger` returns a namespaced logger (``repro.service.jobs``
  etc.) — call sites pass event fields via ``extra=``::

      log = get_logger("repro.service.jobs")
      log.info("job done", extra={"job_id": job.id, "state": "done"})

* :func:`configure` installs a handler on the ``repro`` root logger
  that renders each record as **one JSON object per line** (or an
  aligned ``key=value`` text line with ``fmt="text"``).  Unconfigured,
  records propagate to the stdlib root logger and are dropped at the
  default WARNING threshold — importing this module costs nothing.

Every emitted line carries the ambient trace context: a logging filter
reads :func:`repro.obs.tracing.current_trace` at emit time (in the
emitting thread, so worker threads stamp their own job's ids) and adds
``trace_id``/``span_id`` unless the call site already supplied them.

JSON schema: ``{"ts", "level", "logger", "event", ...extra fields,
"trace_id"?, "span_id"?, "exc"?}`` — ``event`` is the log message, and
every ``extra=`` key is a top-level field, so ``grep <trace_id>`` over
a server log finds every line of one request.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional, Union

from repro.obs.tracing import current_trace

#: the root of the repo's logger namespace
ROOT_LOGGER = "repro"

#: LogRecord attributes that are logging-internal plumbing, not event
#: fields (computed once from a throwaway record, plus the documented
#: late additions)
_RESERVED = set(
    vars(logging.LogRecord("", 0, "", 0, "", (), None))
) | {"message", "asctime", "taskName"}


class _TraceInjector(logging.Filter):
    """Stamp the ambient trace context onto each record at emit time."""

    def filter(self, record: logging.LogRecord) -> bool:
        ctx = current_trace()
        if ctx is not None:
            if not hasattr(record, "trace_id"):
                record.trace_id = ctx.trace_id
            if not hasattr(record, "span_id"):
                record.span_id = ctx.span_id
        return True


def _event_fields(record: logging.LogRecord) -> dict:
    return {
        k: v
        for k, v in record.__dict__.items()
        if k not in _RESERVED and not k.startswith("_")
    }


class JsonLineFormatter(logging.Formatter):
    """One JSON object per line; ``extra=`` keys become top-level fields."""

    def format(self, record: logging.LogRecord) -> str:
        out = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        out.update(_event_fields(record))
        if record.exc_info:
            out["exc"] = self.formatException(record.exc_info)
        return json.dumps(out, default=str)


class TextLineFormatter(logging.Formatter):
    """Human-oriented ``key=value`` rendering of the same fields."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            f"{record.levelname.lower():7s}",
            record.name,
            record.getMessage(),
        ]
        parts += [f"{k}={v}" for k, v in sorted(_event_fields(record).items())]
        line = " ".join(str(p) for p in parts)
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def configure(
    fmt: str = "json",
    level: Union[int, str] = logging.INFO,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install (or replace) the structured handler on the ``repro``
    logger; returns the logger.  Idempotent: reconfiguring swaps the
    handler rather than stacking a second one.

    ``fmt``
        ``"json"`` (one JSON object per line, the machine surface) or
        ``"text"`` (aligned ``key=value`` lines).
    ``level``
        Threshold for the ``repro`` namespace (name or number).
    ``stream``
        Destination; defaults to ``sys.stderr``.
    """
    if fmt not in ("json", "text"):
        raise ValueError(f"unknown log format {fmt!r} (expected 'json' or 'text')")
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level.upper() if isinstance(level, str) else level)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLineFormatter() if fmt == "json" else TextLineFormatter())
    handler.addFilter(_TraceInjector())
    handler._repro_structured = True  # type: ignore[attr-defined]
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_structured", False):
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def unconfigure() -> None:
    """Remove any handler :func:`configure` installed (tests, embeds)."""
    logger = logging.getLogger(ROOT_LOGGER)
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_structured", False):
            logger.removeHandler(existing)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """A logger under the ``repro`` namespace (prefix added if absent)."""
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)
