"""The built-in collecting observer and its run log.

:class:`Recorder` subscribes to every hook and accumulates a
:class:`RunLog` — the in-memory trace a run leaves behind.  The log is
what the exporters (:mod:`repro.obs.export`) consume and what the
per-phase report aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.obs.events import (
    ExecSpanRecord,
    FaultEvent,
    MessageEvent,
    RoundRecord,
    SpanRecord,
)
from repro.obs.observer import Observer


@dataclass
class RunLog:
    """Everything one recorded execution emitted."""

    meta: Dict = field(default_factory=dict)
    spans: List[SpanRecord] = field(default_factory=list)
    rounds: List[RoundRecord] = field(default_factory=list)
    messages: List[MessageEvent] = field(default_factory=list)
    faults: List[FaultEvent] = field(default_factory=list)
    #: chunk spans merged back from forked executor workers — kept
    #: separate from :attr:`spans` so the algorithm-phase span set is
    #: identical across serial and process backends
    exec_spans: List[ExecSpanRecord] = field(default_factory=list)

    # -- aggregation -------------------------------------------------------------

    def phase_summary(self) -> List[dict]:
        """Inclusive per-phase totals, one row per span name.

        Rows are ordered by first occurrence.  Totals are *inclusive* —
        a parent span's row counts everything its children did, exactly
        like the flame views of any tracing UI.
        """
        order: List[str] = []
        acc: Dict[str, dict] = {}
        for s in sorted(self.spans, key=lambda s: (s.start_time, s.uid)):
            row = acc.get(s.name)
            if row is None:
                order.append(s.name)
                row = acc[s.name] = {
                    "phase": s.name,
                    "count": 0,
                    "rounds": 0,
                    "words": 0,
                    "messages": 0,
                    "oracle_calls": 0,
                    "oracle_evaluations": 0,
                    "wall_s": 0.0,
                    "depth": s.depth,
                }
            row["count"] += 1
            row["rounds"] += s.rounds
            row["words"] += s.words
            row["messages"] += s.messages
            row["oracle_calls"] += s.oracle_calls
            row["oracle_evaluations"] += s.oracle_evaluations
            row["wall_s"] += s.duration_s
            row["depth"] = min(row["depth"], s.depth)
        return [acc[name] for name in order]

    def root_totals(self) -> dict:
        """Summed deltas over depth-0 spans only.

        Because depth-0 spans are disjoint in time, these totals
        reconcile exactly with the cluster's own
        :meth:`~repro.mpc.accounting.ClusterStats.summary` for a run
        whose every round happened inside some root span.
        """
        roots = [s for s in self.spans if s.depth == 0]
        return {
            "rounds": sum(s.rounds for s in roots),
            "words": sum(s.words for s in roots),
            "messages": sum(s.messages for s in roots),
            "oracle_calls": sum(s.oracle_calls for s in roots),
            "oracle_evaluations": sum(s.oracle_evaluations for s in roots),
            "wall_s": sum(s.duration_s for s in roots),
        }

    def round_coverage(self) -> float:
        """Fraction of observed rounds covered by at least one span.

        The acceptance bar for the instrumentation layer: a fully
        instrumented algorithm keeps this at 1.0.  Returns 1.0 for a
        log with no rounds.
        """
        if not self.rounds:
            return 1.0
        covered = 0
        for r in self.rounds:
            if any(s.covers_round(r.round_no) for s in self.spans):
                covered += 1
        return covered / len(self.rounds)

    def fault_summary(self) -> dict:
        """Injected-vs-recovered counts, grouped by ``layer/kind``.

        The chaos suite's acceptance view: a run that survived its
        fault plan shows every injection kind matched by recovery
        actions, and ``{"injected": 0, "recovered": 0}`` means the run
        was undisturbed.
        """
        by_kind: Dict[str, int] = {}
        injected = recovered = 0
        for ev in self.faults:
            by_kind[f"{ev.layer}/{ev.kind}"] = by_kind.get(f"{ev.layer}/{ev.kind}", 0) + 1
            if ev.injected:
                injected += 1
            else:
                recovered += 1
        return {"injected": injected, "recovered": recovered, "by_kind": by_kind}

    def span_tree(self) -> List[tuple]:
        """``(depth, span)`` pairs in start order, for indented rendering."""
        return [
            (s.depth, s)
            for s in sorted(self.spans, key=lambda s: (s.start_time, s.uid))
        ]


class Recorder(Observer):
    """Observer that collects every event into a :class:`RunLog`.

    Usage::

        rec = Recorder.attach(cluster)     # or cluster.obs.add(Recorder())
        mpc_kcenter(cluster, k=8)
        rec.log.phase_summary()
    """

    def __init__(self, capture_messages: bool = True) -> None:
        self.log = RunLog()
        self.capture_messages = capture_messages
        # keep the hub's per-message fast path active when this
        # recorder would drop the events anyway
        self.wants_messages = capture_messages

    @classmethod
    def attach(cls, cluster, capture_messages: bool = True) -> "Recorder":
        """Create a recorder, register it on ``cluster.obs``, and stamp
        the log's metadata with the cluster's shape."""
        rec = cls(capture_messages=capture_messages)
        rec.log.meta = {
            "n": cluster.n,
            "machines": cluster.m,
            "seed": cluster.seed,
            "metric": type(cluster.metric).__name__,
        }
        ctx = cluster.obs.trace
        if ctx is not None:
            rec.log.meta["trace_id"] = ctx.trace_id
        cluster.obs.add(rec)
        return rec

    # -- hooks -------------------------------------------------------------------

    def on_message(self, event: MessageEvent) -> None:
        if self.capture_messages:
            self.log.messages.append(event)

    def on_round_end(self, record: RoundRecord) -> None:
        self.log.rounds.append(record)

    def on_span_end(self, span: SpanRecord) -> None:
        self.log.spans.append(span)

    def on_fault(self, event: FaultEvent) -> None:
        self.log.faults.append(event)

    def on_exec_span(self, record: ExecSpanRecord) -> None:
        self.log.exec_spans.append(record)
