"""Request-scoped trace context, W3C ``traceparent`` wire format.

One :class:`TraceContext` identifies a request end to end: the client
stamps it on the HTTP call, the service hands it to the job, the job
hands it to the solver run, the solver's phase spans inherit it, and
the process executor ships it to forked chunk workers — so a single
128-bit trace id connects ``ServiceClient.submit`` to the innermost
chunk span of the run that served it.

Three design points:

* **W3C shape** — ids follow the Trace Context recommendation: a
  128-bit trace id and 64-bit span ids, rendered lowercase-hex in the
  ``traceparent`` header (``00-<trace>-<span>-01``).  Anything that
  speaks the header (proxies, OTel collectors) interoperates.
* **Deterministic when seeded** — :meth:`TraceContext.from_seed`
  derives the root ids from a seed with BLAKE2b, and
  :meth:`TraceContext.child` derives child span ids from
  ``(trace_id, span_id, name, occurrence)``.  Two seeded runs produce
  identical id trees, which is what lets the test suite assert
  bit-identical canonical traces across executions (and lets a chaos
  replay be diffed against the original).
* **Ambient propagation** — :func:`use_trace` installs a context on a
  :mod:`contextvars` variable; :func:`current_trace` reads it.  Layers
  that cannot thread a parameter (the logging filter, the solver facade
  called with default arguments) pick the active context up ambiently.
"""

from __future__ import annotations

import hashlib
import os
import re
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

#: ``traceparent`` header: version 00, 128-bit trace id, 64-bit span id
TRACEPARENT_RE = re.compile(
    r"^00-(?P<trace_id>[0-9a-f]{32})-(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


def _nonzero_hex(digest: bytes, width: int) -> str:
    """Lowercase hex of ``digest``; all-zero ids are invalid per W3C, so
    the (astronomically unlikely) zero digest is bumped to 1."""
    value = int.from_bytes(digest, "big")
    return format(value or 1, f"0{width}x")


def _derive(*parts: object, width: int) -> str:
    digest = hashlib.blake2b(repr(parts).encode(), digest_size=width // 2).digest()
    return _nonzero_hex(digest, width)


@dataclass
class TraceContext:
    """One node of a trace tree: ``(trace_id, span_id, parent_id)``.

    ``trace_id`` is shared by every context derived from the same root;
    ``span_id`` names this node; ``parent_id`` is the deriving node's
    span id (``None`` at the root).  Contexts are cheap value objects —
    derive freely, one per logical operation.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    #: per-name occurrence counters so repeated ``child("x")`` calls get
    #: distinct (but deterministic) ids; identity bookkeeping, not data
    _child_seq: Dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[0-9a-f]{32}", self.trace_id) or not int(self.trace_id, 16):
            raise ValueError(f"invalid trace_id {self.trace_id!r}")
        if not re.fullmatch(r"[0-9a-f]{16}", self.span_id) or not int(self.span_id, 16):
            raise ValueError(f"invalid span_id {self.span_id!r}")

    # -- derivation ---------------------------------------------------------

    @classmethod
    def from_seed(cls, seed: object, name: str = "root") -> "TraceContext":
        """Deterministic root context: same ``(seed, name)`` ⇒ same ids."""
        return cls(
            trace_id=_derive("trace", seed, name, width=32),
            span_id=_derive("span", seed, name, width=16),
        )

    @classmethod
    def generate(cls) -> "TraceContext":
        """Fresh random root context (one per unseeded request)."""
        return cls(
            trace_id=_nonzero_hex(os.urandom(16), 32),
            span_id=_nonzero_hex(os.urandom(8), 16),
        )

    def child(self, name: str) -> "TraceContext":
        """A child context for operation ``name``.

        The child's span id is a pure function of this node's ids, the
        name, and the occurrence number — the deterministic analogue of
        "generate a random span id".
        """
        seq = self._child_seq.get(name, 0)
        self._child_seq[name] = seq + 1
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_derive(self.trace_id, self.span_id, name, seq, width=16),
            parent_id=self.span_id,
        )

    # -- wire format --------------------------------------------------------

    def to_traceparent(self) -> str:
        """Render as a W3C ``traceparent`` header value (sampled)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; ``None`` for absent/invalid
        values (per spec, a malformed header is ignored, not an error)."""
        if not header:
            return None
        match = TRACEPARENT_RE.match(header.strip().lower())
        if match is None:
            return None
        trace_id, span_id = match.group("trace_id"), match.group("span_id")
        if not int(trace_id, 16) or not int(span_id, 16):
            return None
        return cls(trace_id=trace_id, span_id=span_id)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


# -- ambient context ---------------------------------------------------------

_current: ContextVar[Optional[TraceContext]] = ContextVar("repro_trace", default=None)


def current_trace() -> Optional[TraceContext]:
    """The ambient :class:`TraceContext`, or ``None`` outside any."""
    return _current.get()


@contextmanager
def use_trace(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Install ``ctx`` as the ambient trace context for the ``with``
    body (thread- and task-local via :mod:`contextvars`)."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)
