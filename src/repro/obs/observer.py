"""The observer API and the per-cluster hub.

Every :class:`~repro.mpc.cluster.MPCCluster` owns an :class:`ObserverHub`
as ``cluster.obs``.  The cluster invokes the hub natively from
``send()`` and ``step()`` — there is no monkey-patching anywhere — and
algorithms open *phase spans* through it::

    with cluster.obs.span("kcenter/probe", ladder_index=i):
        M = mpc_k_bounded_mis(cluster, tau, k + 1)

Observers subclass :class:`Observer` and override only the hooks they
care about; :meth:`ObserverHub.add` / :meth:`ObserverHub.remove` attach
and detach them at any point of a run.  Hook delivery order within one
round is fixed: ``on_round_start`` → ``on_message`` (per delivered
message, outbox order) → ``on_round_end``.

Spans are tracked even when no observer is attached (the stack must
stay consistent if one attaches mid-run), but the per-message fast path
skips event construction entirely when nobody is listening, keeping the
zero-observer overhead negligible.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional

from repro.obs.events import (
    ExecSpanRecord,
    FaultEvent,
    MessageEvent,
    RoundRecord,
    SpanRecord,
)
from repro.obs.tracing import TraceContext


class Observer:
    """Base class for cluster observers; every hook is a no-op.

    Subclass and override the hooks you need.  Exceptions raised by a
    hook propagate — observers are trusted, in-process instrumentation,
    not sandboxed plugins.
    """

    #: back-reference to the hub, managed by :meth:`ObserverHub.add` /
    #: :meth:`ObserverHub.remove`
    _hub: Optional["ObserverHub"] = None

    #: set False on subclasses that never override :meth:`on_message` /
    #: :meth:`on_send` — when *no* attached observer wants messages, the
    #: hub skips per-message event construction entirely, so an
    #: always-attached aggregator (e.g. the metrics observer) costs
    #: nothing on the message path
    wants_messages: bool = True

    def detach(self) -> None:
        """Remove this observer from its hub (no-op when unattached)."""
        if self._hub is not None:
            self._hub.remove(self)

    def on_round_start(self, round_no: int) -> None:
        """A ``step()`` barrier began; ``round_no`` is the round being
        executed (the cluster's counter has already advanced to it)."""

    def on_send(self, message) -> None:
        """A message was queued via ``cluster.send`` (pre-delivery; the
        :class:`~repro.mpc.message.Message` envelope is passed as-is)."""

    def on_message(self, event: MessageEvent) -> None:
        """A message was delivered during the current ``step()``."""

    def on_round_end(self, record: RoundRecord) -> None:
        """The ``step()`` barrier completed."""

    def on_span_start(self, span: SpanRecord) -> None:
        """A named phase span opened (entry snapshots are filled in)."""

    def on_span_end(self, span: SpanRecord) -> None:
        """A named phase span closed (all snapshots are filled in)."""

    def on_fault(self, event: FaultEvent) -> None:
        """A fault was injected, or a recovery action was taken (see
        :mod:`repro.faults` and :class:`FaultEvent`)."""

    def on_exec_span(self, record: ExecSpanRecord) -> None:
        """An executor chunk computed out-of-process completed and
        shipped its span back (process and remote backends; see
        :class:`ExecSpanRecord`)."""


class ObserverHub:
    """Fan-out point between one cluster and its observers.

    The hub owns the observer list and the span stack.  It reads the
    cluster's counters (round number, cumulative words/messages from
    :class:`~repro.mpc.accounting.ClusterStats`, and — when the metric
    is a :class:`~repro.metric.oracle.CountingOracle` — the oracle call
    counters) to snapshot spans at entry and exit.
    """

    def __init__(self, cluster) -> None:
        self._cluster = cluster
        self._observers: List[Observer] = []
        self._stack: List[SpanRecord] = []
        self._next_uid = 0
        self._round_t0: Optional[float] = None
        #: attached observers with ``wants_messages`` — the message fast
        #: path stays active while this is 0 even when aggregate-only
        #: observers (metrics) are attached
        self._message_listeners = 0
        #: the run's root trace context (see :meth:`set_trace`)
        self._trace: Optional[TraceContext] = None

    # -- observer management -----------------------------------------------------

    def add(self, observer: Observer) -> Observer:
        """Attach ``observer`` (idempotent); returns it for chaining."""
        if observer not in self._observers:
            self._observers.append(observer)
            observer._hub = self
            if observer.wants_messages:
                self._message_listeners += 1
        return observer

    def remove(self, observer: Observer) -> None:
        """Detach ``observer``; a no-op if it is not attached."""
        try:
            self._observers.remove(observer)
            observer._hub = None
            if observer.wants_messages:
                self._message_listeners -= 1
        except ValueError:
            pass

    def clear(self) -> None:
        for ob in self._observers:
            ob._hub = None
        self._observers.clear()
        self._message_listeners = 0

    def __len__(self) -> int:
        return len(self._observers)

    def __contains__(self, observer: object) -> bool:
        return observer in self._observers

    # -- trace context -------------------------------------------------------------

    def set_trace(self, ctx: Optional[TraceContext]) -> None:
        """Install the run's root :class:`TraceContext` (or clear it).

        Once set, every span opened through :meth:`span` derives a
        deterministic child context — ids land on the records, nested
        spans parent correctly, and :meth:`trace_parent` exposes the
        innermost active context for the executor to ship to forked
        chunk workers.
        """
        self._trace = ctx

    @property
    def trace(self) -> Optional[TraceContext]:
        """The installed root trace context, if any."""
        return self._trace

    def trace_parent(self) -> Optional[TraceContext]:
        """The context new work should parent under: the innermost open
        span's, else the root; ``None`` when tracing is off."""
        span = self.current_span
        if span is not None:
            ctx = getattr(span, "_trace_ctx", None)
            if ctx is not None:
                return ctx
        return self._trace

    # -- span management -----------------------------------------------------------

    @property
    def current_span(self) -> Optional[SpanRecord]:
        """The innermost open span, or ``None`` outside any phase."""
        return self._stack[-1] if self._stack else None

    @property
    def span_depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanRecord]:
        """Open a named phase span for the duration of the ``with`` body.

        Extra keyword arguments become the span's ``attrs`` (e.g.
        ``ladder_index=i``, ``tau=0.5``).  Spans nest; the record keeps
        its parent uid and depth so exporters can rebuild the tree.
        """
        span = self._open_span(name, attrs)
        try:
            yield span
        finally:
            self._close_span(span)

    def _open_span(self, name: str, attrs: dict) -> SpanRecord:
        parent = self.current_span
        span = SpanRecord(
            name=name,
            uid=self._next_uid,
            parent_uid=None if parent is None else parent.uid,
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._next_uid += 1
        parent_ctx = self.trace_parent()
        if parent_ctx is not None:
            ctx = parent_ctx.child(name)
            span.trace_id = ctx.trace_id
            span.span_id = ctx.span_id
            span.parent_span_id = ctx.parent_id
            span._trace_ctx = ctx  # transient, for nested derivation
        self._snapshot(span, entry=True)
        self._stack.append(span)
        for ob in self._observers:
            ob.on_span_start(span)
        return span

    def _close_span(self, span: SpanRecord) -> None:
        # close any children left open by a non-local exit (exceptions
        # propagating through nested ``with`` blocks close inner spans
        # first, so in practice this pops exactly one frame)
        while self._stack and self._stack[-1] is not span:
            self._close_span(self._stack[-1])
        if self._stack:
            self._stack.pop()
        self._snapshot(span, entry=False)
        for ob in self._observers:
            ob.on_span_end(span)

    def _snapshot(self, span: SpanRecord, entry: bool) -> None:
        stats = self._cluster.stats
        metric = self._cluster.metric
        calls = getattr(metric, "calls", 0)
        evals = getattr(metric, "evaluations", 0)
        now = time.perf_counter()
        if entry:
            span.start_time = now
            span.start_round = self._cluster.round_no
            span.start_words = stats.total_words
            span.start_messages = stats.total_messages
            span.start_oracle_calls = int(calls)
            span.start_oracle_evaluations = int(evals)
        else:
            span.end_time = now
            span.end_round = self._cluster.round_no
            span.end_words = stats.total_words
            span.end_messages = stats.total_messages
            span.end_oracle_calls = int(calls)
            span.end_oracle_evaluations = int(evals)

    # -- emission (called by MPCCluster) -----------------------------------------

    def emit_round_start(self, round_no: int) -> None:
        self._round_t0 = time.perf_counter()
        for ob in self._observers:
            ob.on_round_start(round_no)

    def emit_send(self, message) -> None:
        if not self._message_listeners:
            return
        for ob in self._observers:
            ob.on_send(message)

    def emit_message(self, round_no: int, src: int, dst: int, tag: str, words: int) -> None:
        if not self._message_listeners:
            return
        event = MessageEvent(round_no=round_no, src=src, dst=dst, tag=tag, words=words)
        for ob in self._observers:
            ob.on_message(event)

    def emit_fault(self, event: FaultEvent) -> None:
        """Fan a fault/recovery event out to the observers.

        Events arrive pre-stamped or are stamped here with the span
        clock (``time.perf_counter``) so exporters can place them on
        the same timeline as spans and rounds.
        """
        if not self._observers:
            return
        if event.time == 0.0:
            # frozen dataclass: rebuild with the stamp filled in
            event = FaultEvent(**{**event.to_dict(), "time": time.perf_counter()})
        for ob in self._observers:
            ob.on_fault(event)

    def emit_exec_span(self, record: ExecSpanRecord) -> None:
        """Fan a merged executor chunk span out to the observers."""
        for ob in self._observers:
            ob.on_exec_span(record)

    def emit_round_end(self, round_stats) -> None:
        if not self._observers:
            self._round_t0 = None
            return
        now = time.perf_counter()
        record = RoundRecord(
            round_no=round_stats.round_no,
            start_time=self._round_t0 if self._round_t0 is not None else now,
            end_time=now,
            words=round_stats.total,
            messages=round_stats.messages,
            max_load=round_stats.max_load,
        )
        self._round_t0 = None
        for ob in self._observers:
            ob.on_round_end(record)
