"""Trace exporters: JSONL, Chrome trace-event JSON, ASCII phase report.

Three sinks for a recorded :class:`~repro.obs.record.RunLog`:

* :func:`write_jsonl` / :func:`read_jsonl` — one JSON object per line
  (``meta``, then every span/round/message tagged with a ``type``
  field); machine-readable, append-friendly, and round-trippable;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (JSON Array Format with ``traceEvents``), loadable
  in ``chrome://tracing`` and https://ui.perfetto.dev: spans render as
  nested "X" slices on one track, rounds as slices on a second track,
  and per-round word counts as a counter series;
* :func:`phase_report` — the per-phase ASCII table the CLI prints for
  ``--report phases``.

Timestamps in the Chrome export are microseconds relative to the first
recorded event, as the format expects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.events import (
    ExecSpanRecord,
    FaultEvent,
    MessageEvent,
    RoundRecord,
    SpanRecord,
)
from repro.obs.record import RunLog

PathLike = Union[str, Path]


# -- JSONL -----------------------------------------------------------------------

def write_jsonl(log: RunLog, path: PathLike) -> Path:
    """Write the run log as JSON Lines; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        fh.write(json.dumps({"type": "meta", **log.meta}) + "\n")
        for s in log.spans:
            fh.write(json.dumps({"type": "span", **s.to_dict()}) + "\n")
        for r in log.rounds:
            fh.write(json.dumps({"type": "round", **r.to_dict()}) + "\n")
        for m in log.messages:
            fh.write(json.dumps({"type": "message", **m.to_dict()}) + "\n")
        for f in log.faults:
            fh.write(json.dumps({"type": "fault", **f.to_dict()}) + "\n")
        for e in log.exec_spans:
            fh.write(json.dumps({"type": "exec_span", **e.to_dict()}) + "\n")
    return path


def read_jsonl(path: PathLike) -> RunLog:
    """Parse a file written by :func:`write_jsonl` back into a RunLog."""
    log = RunLog()
    span_fields = {
        "name", "uid", "parent_uid", "depth", "attrs",
        "trace_id", "span_id", "parent_span_id",
        "start_time", "end_time", "start_round", "end_round",
        "start_words", "end_words", "start_messages", "end_messages",
        "start_oracle_calls", "end_oracle_calls",
        "start_oracle_evaluations", "end_oracle_evaluations",
    }
    round_fields = {"round_no", "start_time", "end_time", "words", "messages", "max_load"}
    message_fields = {"round_no", "src", "dst", "tag", "words"}
    fault_fields = {"layer", "kind", "injected", "round_no", "target", "attempt",
                    "detail", "time"}
    exec_fields = {"name", "worker", "batch", "attempt", "chunk_size", "first_index",
                   "os_pid", "start_time", "end_time",
                   "trace_id", "span_id", "parent_span_id"}
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        kind = obj.pop("type", None)
        if kind == "meta":
            log.meta = obj
        elif kind == "span":
            log.spans.append(
                SpanRecord(**{k: v for k, v in obj.items() if k in span_fields})
            )
        elif kind == "round":
            log.rounds.append(
                RoundRecord(**{k: v for k, v in obj.items() if k in round_fields})
            )
        elif kind == "message":
            log.messages.append(
                MessageEvent(**{k: v for k, v in obj.items() if k in message_fields})
            )
        elif kind == "fault":
            log.faults.append(
                FaultEvent(**{k: v for k, v in obj.items() if k in fault_fields})
            )
        elif kind == "exec_span":
            log.exec_spans.append(
                ExecSpanRecord(**{k: v for k, v in obj.items() if k in exec_fields})
            )
    return log


# -- Chrome trace-event format ----------------------------------------------------

#: synthetic thread ids of the tracks in the Chrome export
SPAN_TID = 0
ROUND_TID = 1
FAULT_TID = 2


def to_chrome_trace(log: RunLog) -> Dict:
    """Build a Chrome trace-event document (JSON Object Format).

    Driver-side tracks (phases, rounds, faults) render under pid 0;
    executor chunk spans merged from forked workers render under
    synthetic pid ``1 + worker`` so Perfetto shows one process lane per
    worker slot (the real OS pid — which is not deterministic — stays
    in the event args).
    """
    starts = [s.start_time for s in log.spans] + [r.start_time for r in log.rounds]
    starts += [f.time for f in log.faults if f.time > 0.0]
    starts += [e.start_time for e in log.exec_spans]
    t0 = min(starts) if starts else 0.0

    def us(t: float) -> float:
        return round((t - t0) * 1e6, 3)

    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "repro MPC simulator"}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": SPAN_TID,
         "args": {"name": "algorithm phases"}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": ROUND_TID,
         "args": {"name": "MPC rounds"}},
    ]
    if log.faults:
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": FAULT_TID,
             "args": {"name": "faults & recovery"}}
        )
        for f in log.faults:
            events.append(
                {
                    "name": f"{'⚡' if f.injected else '✓'} {f.kind}",
                    "cat": "fault",
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": FAULT_TID,
                    "ts": us(f.time) if f.time > 0.0 else 0.0,
                    "args": f.to_dict(),
                }
            )
    for s in sorted(log.spans, key=lambda s: (s.start_time, s.uid)):
        args = {
            "rounds": s.rounds,
            "words": s.words,
            "messages": s.messages,
            "oracle_calls": s.oracle_calls,
            "oracle_evaluations": s.oracle_evaluations,
            "start_round": s.start_round,
            "end_round": s.end_round,
            **s.attrs,
        }
        if s.trace_id is not None:
            args["trace_id"] = s.trace_id
            args["span_id"] = s.span_id
            args["parent_span_id"] = s.parent_span_id
        events.append(
            {
                "name": s.name,
                "cat": "span",
                "ph": "X",
                "pid": 0,
                "tid": SPAN_TID,
                "ts": us(s.start_time),
                "dur": max(round(s.duration_s * 1e6, 3), 0.001),
                "args": args,
            }
        )
    for pid in sorted({1 + e.worker for e in log.exec_spans}):
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": f"executor worker {pid - 1}"}}
        )
    for e in sorted(log.exec_spans,
                    key=lambda e: (e.batch, e.attempt, e.worker)):
        events.append(
            {
                "name": e.name,
                "cat": "exec",
                "ph": "X",
                "pid": 1 + e.worker,
                "tid": 0,
                "ts": us(e.start_time),
                "dur": max(round(e.duration_s * 1e6, 3), 0.001),
                "args": e.to_dict(),
            }
        )
    for r in log.rounds:
        events.append(
            {
                "name": f"round {r.round_no}",
                "cat": "round",
                "ph": "X",
                "pid": 0,
                "tid": ROUND_TID,
                "ts": us(r.start_time),
                "dur": max(round(r.duration_s * 1e6, 3), 0.001),
                "args": {
                    "words": r.words,
                    "messages": r.messages,
                    "max_load": r.max_load,
                },
            }
        )
        events.append(
            {
                "name": "delivered words",
                "cat": "round",
                "ph": "C",
                "pid": 0,
                "ts": us(r.end_time),
                "args": {"words": r.words},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(log.meta),
    }


def write_chrome_trace(log: RunLog, path: PathLike) -> Path:
    """Write :func:`to_chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(log), indent=1) + "\n")
    return path


# -- ASCII report -----------------------------------------------------------------

def phase_report(log: RunLog, title: str = "per-phase breakdown") -> str:
    """Render the per-phase totals as an ASCII table.

    Phase names are indented by their minimum nesting depth so the tree
    structure survives in plain text.
    """
    from repro.analysis.reports import format_table  # lazy: avoids an import cycle

    rows = []
    for row in log.phase_summary():
        rows.append(
            {
                "phase": "  " * row["depth"] + row["phase"],
                "count": row["count"],
                "rounds": row["rounds"],
                "words": row["words"],
                "messages": row["messages"],
                "oracle calls": row["oracle_calls"],
                "oracle evals": row["oracle_evaluations"],
                "wall ms": row["wall_s"] * 1e3,
            }
        )
    table = format_table(rows, title=title)
    cov = log.round_coverage()
    return f"{table}\nspan coverage: {cov:.1%} of {len(log.rounds)} observed rounds"


def export_run(log: RunLog, path: PathLike, fmt: str = "chrome") -> Path:
    """Dispatch on ``fmt`` (``'chrome'`` or ``'jsonl'``)."""
    if fmt == "chrome":
        return write_chrome_trace(log, path)
    if fmt == "jsonl":
        return write_jsonl(log, path)
    raise ValueError(f"unknown trace format {fmt!r} (expected 'chrome' or 'jsonl')")


def trace_payload(log: RunLog, fmt: str = "chrome",
                  annotations: Optional[List[dict]] = None) -> tuple[str, str]:
    """Serialize a run log for wire transfer: ``(content_type, body)``.

    The in-memory counterpart of :func:`export_run`, used by the job
    service to serve ``GET /jobs/<id>/trace`` without touching disk.
    Bodies round-trip through the corresponding readers (the ``jsonl``
    form via :func:`read_jsonl`).

    ``annotations`` lets the caller attach service-level trace events
    the run log itself cannot know about — e.g. "this response was a
    cache hit" — as ``{"name": ..., "args": {...}}`` dicts: instant
    events on the fault track in the Chrome form, ``annotation`` lines
    in the JSONL form.
    """
    if fmt == "chrome":
        doc = to_chrome_trace(log)
        for ann in annotations or []:
            doc["traceEvents"].append(
                {
                    "name": ann["name"],
                    "cat": "annotation",
                    "ph": "i",
                    "s": "g",
                    "pid": 0,
                    "tid": FAULT_TID,
                    "ts": 0.0,
                    "args": dict(ann.get("args", {})),
                }
            )
        return "application/json", json.dumps(doc) + "\n"
    if fmt == "jsonl":
        lines = [json.dumps({"type": "meta", **log.meta})]
        lines += [json.dumps({"type": "span", **s.to_dict()}) for s in log.spans]
        lines += [json.dumps({"type": "round", **r.to_dict()}) for r in log.rounds]
        lines += [json.dumps({"type": "message", **m.to_dict()}) for m in log.messages]
        lines += [json.dumps({"type": "fault", **f.to_dict()}) for f in log.faults]
        lines += [json.dumps({"type": "exec_span", **e.to_dict()})
                  for e in log.exec_spans]
        lines += [json.dumps({"type": "annotation", **ann})
                  for ann in annotations or []]
        return "application/x-ndjson", "\n".join(lines) + "\n"
    raise ValueError(f"unknown trace format {fmt!r} (expected 'chrome' or 'jsonl')")


#: event/args keys that carry wall-clock or OS-assigned values — the
#: non-deterministic residue :func:`canonical_chrome_trace` strips
_VOLATILE_KEYS = frozenset(
    {"ts", "dur"}
)
_VOLATILE_ARG_KEYS = frozenset(
    {"time", "os_pid", "start_time", "end_time", "duration_s", "wall_s"}
)


def canonical_chrome_trace(doc: Dict) -> Dict:
    """A Chrome trace document minus its non-deterministic residue.

    Timestamps, durations, and OS pids vary run to run even for a fully
    seeded execution; everything else — event names, categories, track
    layout, counters, trace/span ids — is deterministic.  Two seeded
    runs of the same spec must produce *identical* canonical documents
    (the test suite asserts it), which is what makes a recorded trace a
    replayable artifact rather than a one-off.
    """
    events = []
    for ev in doc.get("traceEvents", []):
        ev = {k: v for k, v in ev.items() if k not in _VOLATILE_KEYS}
        args = ev.get("args")
        if isinstance(args, dict):
            ev["args"] = {
                k: v for k, v in args.items() if k not in _VOLATILE_ARG_KEYS
            }
        events.append(ev)
    other = {
        k: v
        for k, v in doc.get("otherData", {}).items()
        if k not in _VOLATILE_ARG_KEYS
    }
    return {"traceEvents": events, "otherData": other}
