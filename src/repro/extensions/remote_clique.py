"""Remote-clique diversity maximization: pick a k-subset maximizing the
*sum* of pairwise distances.

The paper's related work (Section 1.2) situates its remote-edge result
next to the remote-clique line of work: Indyk et al. (PODC 2014) gave
constant-factor composable coresets for remote-clique, later improved
via randomized composable coresets.  This module provides:

* :func:`remote_clique_value` — the objective;
* :func:`greedy_remote_clique` — the classic greedy dispersion
  heuristic (add the point with the largest total distance to the
  chosen set);
* :func:`local_search_remote_clique` — single-swap local search, a
  2-approximation at a local optimum (Ravi et al. / dispersion
  folklore);
* :func:`exact_remote_clique` — brute force for ratio measurement;
* :func:`mpc_remote_clique` — two-round MPC pipeline à la Indyk et al.:
  GMM coresets per machine (GMM output is a composable coreset for
  remote-clique too), local search on the union at the central machine.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Tuple

import numpy as np

from repro.core.gmm import gmm
from repro.metric.base import Metric
from repro.mpc.cluster import MPCCluster
from repro.mpc.message import PointBatch


def remote_clique_value(metric: Metric, S: Iterable[int]) -> float:
    """Sum of pairwise distances within ``S`` (0 for |S| < 2)."""
    S = np.unique(np.asarray(S, dtype=np.int64))
    if S.size < 2:
        return 0.0
    D = metric.pairwise(S, S)
    return float(D.sum()) / 2.0


def greedy_remote_clique(metric: Metric, candidates: Iterable[int], k: int) -> np.ndarray:
    """Greedy dispersion: repeatedly add the candidate with the largest
    total distance to the chosen set (first pick: the candidate with the
    largest single distance)."""
    cand = np.unique(np.asarray(candidates, dtype=np.int64))
    if k < 1 or cand.size == 0:
        return np.zeros(0, dtype=np.int64)
    if cand.size <= k:
        return cand
    # seed with the farthest pair's first endpoint (cheap approximation:
    # farthest point from the centroid-ish first candidate)
    d0 = metric.pairwise(cand, cand[:1])[:, 0]
    first = int(cand[int(np.argmax(d0))])
    chosen = [first]
    totals = metric.pairwise(cand, [first])[:, 0]
    taken = cand == first
    while len(chosen) < k:
        masked = np.where(taken, -np.inf, totals)
        pos = int(np.argmax(masked))
        nxt = int(cand[pos])
        chosen.append(nxt)
        taken[pos] = True
        totals += metric.pairwise(cand, [nxt])[:, 0]
    return np.asarray(chosen, dtype=np.int64)


def local_search_remote_clique(
    metric: Metric,
    candidates: Iterable[int],
    k: int,
    max_sweeps: int = 20,
    start: np.ndarray | None = None,
) -> np.ndarray:
    """Single-swap local search from a greedy start.

    At a local optimum the solution is a 2-approximation for max-sum
    dispersion.  Each sweep tries to swap every member for every
    outside candidate, taking improving swaps greedily; terminates when
    a full sweep finds no improvement (or after ``max_sweeps``).
    """
    cand = np.unique(np.asarray(candidates, dtype=np.int64))
    current = (
        greedy_remote_clique(metric, cand, k)
        if start is None
        else np.unique(np.asarray(start, dtype=np.int64))
    )
    if current.size >= cand.size or current.size < 2:
        return current
    current = current.copy()

    for _ in range(max_sweeps):
        improved = False
        outside = cand[~np.isin(cand, current)]
        if outside.size == 0:
            break
        # distances of every candidate to every current member
        D_in = metric.pairwise(cand, current)
        idx_of = {int(v): i for i, v in enumerate(cand)}
        # contribution of each member to the objective
        member_rows = np.array([idx_of[int(v)] for v in current])
        contrib = D_in[member_rows].sum(axis=1)  # includes 0 self column
        for slot in range(current.size):
            v = int(current[slot])
            # objective delta of replacing v by u:
            #   gain = Σ_{w ∈ S\{v}} d(u, w)  −  Σ_{w ∈ S\{v}} d(v, w)
            sum_to_others = D_in.sum(axis=1) - D_in[:, slot]
            base_loss = float(contrib[slot])
            deltas = sum_to_others - base_loss
            deltas[member_rows] = -np.inf  # cannot swap in a member
            best = int(np.argmax(deltas))
            if deltas[best] > 1e-12:
                u = int(cand[best])
                current[slot] = u
                # refresh cached structures
                D_in = metric.pairwise(cand, current)
                member_rows = np.array([idx_of[int(w)] for w in current])
                contrib = D_in[member_rows].sum(axis=1)
                improved = True
        if not improved:
            break
    return np.sort(current)


def exact_remote_clique(
    metric: Metric, k: int, max_subsets: int = 2_000_000
) -> Tuple[np.ndarray, float]:
    """Optimal remote-clique by exhaustive search (small n only)."""
    from math import comb

    n = metric.n
    if not (2 <= k <= n):
        raise ValueError("need 2 <= k <= n")
    if comb(n, k) > max_subsets:
        raise ValueError("instance too large for exact search")
    ids = np.arange(n, dtype=np.int64)
    D = metric.pairwise(ids, ids)
    best_val, best_set = -1.0, None
    for sub in combinations(range(n), k):
        s = list(sub)
        val = float(D[np.ix_(s, s)].sum()) / 2.0
        if val > best_val:
            best_val, best_set = val, s
    return np.asarray(best_set, dtype=np.int64), best_val


def mpc_remote_clique(cluster: MPCCluster, k: int) -> Tuple[np.ndarray, float]:
    """Two-round composable-coreset MPC remote-clique (Indyk et al. style).

    Every machine ships its GMM(k) output; the central machine runs the
    local-search 2-approximation on the union.  Returns
    ``(subset, value)``.
    """
    if k < 2:
        raise ValueError("remote-clique needs k >= 2")
    payloads = {}
    for mach in cluster.machines:
        payloads[mach.id] = PointBatch(gmm(mach, mach.local_ids, k))
    inbox = cluster.gather_to_central(payloads, tag="rclique/coreset")
    T = np.unique(np.concatenate([msg.payload.ids for msg in inbox]))
    subset = local_search_remote_clique(cluster.central, T, min(k, T.size))
    return subset, remote_clique_value(cluster.metric, subset)
