"""Extensions beyond the paper's core results.

* :mod:`repro.extensions.remote_clique` — the *remote-clique* diversity
  measure (maximize the **sum** of pairwise distances) that the paper's
  related-work section discusses (Indyk et al. 2014; Abbasi Zadeh et
  al. 2017; Epasto et al. 2019; Mirrokni & Zadimoghaddam 2015):
  sequential greedy and local-search algorithms, a brute-force optimum,
  and a composable-coreset MPC pipeline in the style of Indyk et al.
"""

from repro.extensions.remote_clique import (
    exact_remote_clique,
    greedy_remote_clique,
    local_search_remote_clique,
    mpc_remote_clique,
    remote_clique_value,
)

__all__ = [
    "remote_clique_value",
    "greedy_remote_clique",
    "local_search_remote_clique",
    "exact_remote_clique",
    "mpc_remote_clique",
]
