"""repro.faults — deterministic fault injection for chaos testing.

The MPC model the paper analyses assumes machines that compute and
communicate in lockstep; any real fleet straggles, crashes, and gets
OOM-killed.  This package is the *injection* half of the stack's
fault-tolerance story (the recovery half lives where the faults land:
chunk retry and serial fallback in
:class:`~repro.mpc.executor.ProcessExecutor`, transient-fault retry in
:meth:`~repro.mpc.cluster.MPCCluster.map_machines`, job retry with
backoff in :class:`~repro.service.jobs.JobManager`, and transport retry
in :class:`~repro.service.client.ServiceClient`).

Everything is driven by a :class:`FaultPlan` — a seeded, serializable
config whose fault decisions are pure functions of ``(seed, fault
coordinates)``, so an injected chaos run is exactly reproducible and
its results can be asserted bit-identical to an undisturbed run::

    from repro import solve_kcenter
    from repro.faults import FaultPlan

    plan = FaultPlan(seed=7, worker_kill=1.0, machine_fault=0.2)
    res = solve_kcenter(points, k=8, backend="process", faults=plan)
    # res is bit-identical to the same call without faults

Over the service: ``repro serve --faults "seed=7,error_burst=8"``.

See ``docs/fault_tolerance.md`` for the fault model and the recovery
ladder.
"""

from repro.exceptions import FaultError, MachineFault
from repro.faults.plan import MACHINE_FAULT_RETRIES, FaultPlan

__all__ = [
    "FaultPlan",
    "FaultError",
    "MachineFault",
    "MACHINE_FAULT_RETRIES",
]
