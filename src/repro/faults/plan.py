"""Deterministic, seeded fault plans.

A :class:`FaultPlan` decides — as a *pure function* of its seed and the
fault coordinates — which faults fire where.  Purity is the load-bearing
property: the same plan object (or a reconstruction from its
:meth:`to_dict`) gives the same answers in the driver, in a forked
worker, and in a re-run, so

* the driver can emit an observability event for a fault that will
  actually be injected inside a worker process it never hears from
  again;
* a retry can ask "does the fault persist on attempt 2?" and get an
  answer that does not depend on wall clock, PID, or scheduling;
* a chaos test can assert the exact set of injected faults for a seed.

Rolls are computed by hashing ``(seed, layer, *coordinates)`` with
BLAKE2b and mapping the digest to ``[0, 1)`` — stable across processes
and interpreter runs (unlike ``hash()``, which is salted).

Four layers of fault coordinates:

executor
    ``(batch_no, worker_index)`` — one forked chunk worker.  Actions:
    ``kill`` (``os._exit`` before reporting), ``corrupt`` (garbage
    payload), ``delay`` (sleep, then proceed normally).  A fault keeps
    firing for the first :attr:`worker_fault_attempts` executions of
    its chunk, then clears — so the executor's bounded chunk retry
    recovers unless the plan is configured to out-persist it.
remote
    ``(batch_no, chunk_slot)`` — one chunk dispatched to a remote
    worker agent (see :mod:`repro.mpc.remote`).  Actions: ``drop``
    (the connection closes with no reply), ``kill`` (the agent dies —
    permanently, like a SIGKILL), ``corrupt`` (undecodable response
    payload), ``delay`` (the agent sleeps :attr:`remote_delay_s`
    before computing; heartbeats keep its lease alive).  Faults are
    decided in the driver (observers see every injection) and enacted
    by the agent; like the executor layer, a fault persists for the
    first :attr:`remote_fault_attempts` executions of its chunk.
machine
    ``(round_no, dispatch_no, machine_id)`` — one per-machine task in
    a ``map_machines`` dispatch.  The fault is a transient
    :class:`~repro.exceptions.MachineFault` raised *at task entry*,
    before the machine touches its RNG stream or the distance oracle —
    which is what makes retried runs bit-identical to undisturbed ones.
machine_fault_attempts
    consecutive attempts the machine fault persists for; set it above
    :data:`MACHINE_FAULT_RETRIES` to simulate a machine that never
    comes back.
service
    ``(request_no)`` — one HTTP request.  Actions: a synthetic ``429``
    or ``503`` response (with ``Retry-After``) or a dropped connection.
    :attr:`error_burst` additionally fails the first N requests
    unconditionally — the "429 storm" used by the chaos CI job.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Optional, Tuple, Union

#: how many times the cluster retries a task hit by a MachineFault
#: before letting the fault propagate (see MPCCluster.map_machines)
MACHINE_FAULT_RETRIES = 3


def _validate_rate(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")
    return value


@dataclass
class FaultPlan:
    """Seeded description of which faults to inject, where.

    All rates are probabilities in ``[0, 1]``; a layer with every rate
    at 0 injects nothing and costs nothing.  Plans serialize to JSON
    (:meth:`to_dict` / :meth:`from_dict`) so bench and chaos artifacts
    can record exactly what was injected, and parse from compact
    ``key=value,key=value`` CLI specs (:meth:`from_spec`).
    """

    seed: int = 0

    # -- executor layer (forked chunk workers) --
    #: probability a chunk worker is killed before reporting
    worker_kill: float = 0.0
    #: probability a chunk worker ships an undecodable payload
    worker_corrupt: float = 0.0
    #: probability a chunk worker is delayed (straggler) before working
    worker_delay: float = 0.0
    #: straggler sleep, seconds
    worker_delay_s: float = 0.02
    #: executions of a chunk the fault persists for (1 = first try only)
    worker_fault_attempts: int = 1

    # -- remote layer (chunks dispatched to remote worker agents) --
    #: probability a dispatched chunk's connection is dropped, no reply
    remote_drop: float = 0.0
    #: probability the receiving agent dies (permanently, like SIGKILL)
    remote_kill: float = 0.0
    #: probability the agent replies with an undecodable payload
    remote_corrupt: float = 0.0
    #: probability the agent stalls before computing (slow worker)
    remote_delay: float = 0.0
    #: slow-worker stall, seconds (heartbeats keep the lease alive)
    remote_delay_s: float = 0.02
    #: executions of a chunk the remote fault persists for
    remote_fault_attempts: int = 1

    # -- machine layer (map_machines tasks) --
    #: probability a (dispatch, machine) task raises a MachineFault
    machine_fault: float = 0.0
    #: consecutive attempts the machine fault persists for
    machine_fault_attempts: int = 1

    # -- service layer (HTTP requests) --
    #: probability a request gets a synthetic 429/503 response
    service_error: float = 0.0
    #: probability a request's connection is dropped with no response
    service_drop: float = 0.0
    #: unconditionally fail the first N requests with 429 (the "storm")
    error_burst: int = 0
    #: Retry-After value attached to synthetic 429/503 responses
    retry_after_s: float = 0.05

    def __post_init__(self) -> None:
        self.seed = int(self.seed)
        for name in ("worker_kill", "worker_corrupt", "worker_delay",
                     "remote_drop", "remote_kill", "remote_corrupt", "remote_delay",
                     "machine_fault", "service_error", "service_drop"):
            setattr(self, name, _validate_rate(name, getattr(self, name)))
        if self.worker_kill + self.worker_corrupt + self.worker_delay > 1.0:
            raise ValueError("worker_kill + worker_corrupt + worker_delay must be <= 1")
        if self.remote_drop + self.remote_kill + self.remote_corrupt + self.remote_delay > 1.0:
            raise ValueError(
                "remote_drop + remote_kill + remote_corrupt + remote_delay must be <= 1"
            )
        if self.service_error + self.service_drop > 1.0:
            raise ValueError("service_error + service_drop must be <= 1")
        self.worker_delay_s = float(self.worker_delay_s)
        self.remote_delay_s = float(self.remote_delay_s)
        self.retry_after_s = float(self.retry_after_s)
        if self.worker_delay_s < 0 or self.remote_delay_s < 0 or self.retry_after_s < 0:
            raise ValueError("delay/retry-after durations must be >= 0")
        self.worker_fault_attempts = int(self.worker_fault_attempts)
        self.remote_fault_attempts = int(self.remote_fault_attempts)
        self.machine_fault_attempts = int(self.machine_fault_attempts)
        if (self.worker_fault_attempts < 1 or self.remote_fault_attempts < 1
                or self.machine_fault_attempts < 1):
            raise ValueError("fault_attempts values must be >= 1")
        self.error_burst = int(self.error_burst)
        if self.error_burst < 0:
            raise ValueError(f"error_burst must be >= 0, got {self.error_burst}")

    # -- activity flags ------------------------------------------------------

    @property
    def worker_active(self) -> bool:
        """True when the executor layer can inject anything."""
        return (self.worker_kill + self.worker_corrupt + self.worker_delay) > 0

    @property
    def remote_active(self) -> bool:
        """True when remote chunk dispatches can be faulted."""
        return (self.remote_drop + self.remote_kill
                + self.remote_corrupt + self.remote_delay) > 0

    @property
    def machine_active(self) -> bool:
        """True when map_machines tasks can be faulted."""
        return self.machine_fault > 0

    @property
    def service_active(self) -> bool:
        """True when HTTP requests can be faulted."""
        return (self.service_error + self.service_drop) > 0 or self.error_burst > 0

    # -- the deterministic roll ---------------------------------------------

    def _roll(self, *key) -> float:
        """Uniform [0, 1) draw, a pure function of ``(seed, *key)``."""
        digest = hashlib.blake2b(
            repr((self.seed,) + key).encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / 2**64

    # -- layer predicates ----------------------------------------------------

    def worker_fault(
        self, batch_no: int, worker_index: int, attempt: int = 0
    ) -> Optional[str]:
        """Fault for one chunk-worker execution, or ``None``.

        Returns ``'kill'``, ``'corrupt'``, or ``'delay'``.  The roll is
        keyed by ``(batch, worker)`` — not the attempt — so a faulted
        chunk keeps drawing the *same* fault until ``attempt`` reaches
        :attr:`worker_fault_attempts`, at which point it clears and the
        retry succeeds.
        """
        if attempt >= self.worker_fault_attempts or not self.worker_active:
            return None
        r = self._roll("worker", int(batch_no), int(worker_index))
        if r < self.worker_kill:
            return "kill"
        if r < self.worker_kill + self.worker_corrupt:
            return "corrupt"
        if r < self.worker_kill + self.worker_corrupt + self.worker_delay:
            return "delay"
        return None

    def remote_fault(
        self, batch_no: int, chunk_slot: int, attempt: int = 0
    ) -> Optional[str]:
        """Fault for one remote chunk dispatch, or ``None``.

        Returns ``'drop'``, ``'kill'``, ``'corrupt'``, or ``'delay'``.
        Like :meth:`worker_fault`, the roll is keyed by ``(batch,
        chunk_slot)`` — not the attempt — so a faulted chunk keeps
        drawing the *same* fault until ``attempt`` reaches
        :attr:`remote_fault_attempts`, at which point it clears and the
        re-dispatch succeeds (on a surviving worker, if the fault was a
        kill).
        """
        if attempt >= self.remote_fault_attempts or not self.remote_active:
            return None
        r = self._roll("remote", int(batch_no), int(chunk_slot))
        if r < self.remote_drop:
            return "drop"
        if r < self.remote_drop + self.remote_kill:
            return "kill"
        if r < self.remote_drop + self.remote_kill + self.remote_corrupt:
            return "corrupt"
        if (r < self.remote_drop + self.remote_kill
                + self.remote_corrupt + self.remote_delay):
            return "delay"
        return None

    def machine_faults(
        self, round_no: int, dispatch_no: int, machine_id: int
    ) -> int:
        """Consecutive faulted attempts for one map_machines task.

        Returns 0 (no fault) or :attr:`machine_fault_attempts`: one
        roll per ``(round, dispatch, machine)`` decides whether the
        task is faulty, and the attempts knob decides how long the
        fault persists under retry.
        """
        if not self.machine_active:
            return 0
        r = self._roll("machine", int(round_no), int(dispatch_no), int(machine_id))
        return self.machine_fault_attempts if r < self.machine_fault else 0

    def service_fault(self, request_no: int) -> Optional[Tuple[str, int]]:
        """Fault for one HTTP request, or ``None``.

        Returns ``('error', status)`` for a synthetic ``429``/``503``
        (alternating, so both client paths get exercised) or
        ``('drop', 0)`` for a dropped connection.  The first
        :attr:`error_burst` requests always get ``('error', 429)``.
        """
        request_no = int(request_no)
        if request_no < self.error_burst:
            return ("error", 429)
        if not (self.service_error + self.service_drop) > 0:
            return None
        r = self._roll("service", request_no)
        if r < self.service_error:
            status = 429 if self._roll("service-status", request_no) < 0.5 else 503
            return ("error", status)
        if r < self.service_error + self.service_drop:
            return ("drop", 0)
        return None

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form; round-trips through :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Build from :meth:`to_dict` output, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown fault plan field(s): {', '.join(unknown)}; "
                f"accepted: {', '.join(sorted(known))}"
            )
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_spec(cls, spec: Union[str, dict, "FaultPlan", None]) -> Optional["FaultPlan"]:
        """Coerce a CLI/config spec into a plan (``None`` passes through).

        Accepts a plan instance, a dict, a JSON object string, or the
        compact ``key=value,key=value`` form::

            seed=7,worker_kill=1.0,machine_fault=0.2,error_burst=8
        """
        if spec is None or isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        text = str(spec).strip()
        if not text:
            return None
        if text.startswith("{"):
            return cls.from_dict(json.loads(text))
        payload = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(
                    f"bad fault spec item {item!r}; expected key=value "
                    "(e.g. 'seed=7,worker_kill=1.0')"
                )
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                parsed = int(value)
            except ValueError:
                try:
                    parsed = float(value)
                except ValueError:
                    raise ValueError(
                        f"fault spec value for {key!r} must be numeric, got {value!r}"
                    ) from None
            payload[key] = parsed
        return cls.from_dict(payload)

    def describe(self) -> str:
        """One-line human summary of the active layers."""
        parts = [f"seed={self.seed}"]
        if self.worker_active:
            parts.append(
                f"worker(kill={self.worker_kill}, corrupt={self.worker_corrupt}, "
                f"delay={self.worker_delay}, attempts={self.worker_fault_attempts})"
            )
        if self.remote_active:
            parts.append(
                f"remote(drop={self.remote_drop}, kill={self.remote_kill}, "
                f"corrupt={self.remote_corrupt}, delay={self.remote_delay}, "
                f"attempts={self.remote_fault_attempts})"
            )
        if self.machine_active:
            parts.append(
                f"machine(rate={self.machine_fault}, "
                f"attempts={self.machine_fault_attempts})"
            )
        if self.service_active:
            parts.append(
                f"service(error={self.service_error}, drop={self.service_drop}, "
                f"burst={self.error_burst})"
            )
        if len(parts) == 1:
            parts.append("no active layers")
        return "FaultPlan(" + ", ".join(parts) + ")"
