"""Instrumentation wrappers for distance oracles.

* :class:`CountingOracle` counts individual distance *evaluations*
  (matrix cells), giving the oracle-complexity numbers reported by the
  F2 scaling experiment.
* :class:`CachedOracle` memoizes scalar :meth:`distance` calls, useful
  for algorithms that repeatedly probe the same pairs (e.g. the
  Hochbaum–Shmoys parametric ladder).

Both wrappers are themselves :class:`~repro.metric.base.Metric`
instances, so they compose (``CountingOracle(CachedOracle(m))``).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.metric.base import Metric


class CountingOracle(Metric):
    """Transparent wrapper that counts distance evaluations."""

    def __init__(self, inner: Metric) -> None:
        self.inner = inner
        self.n = inner.n
        self.chunk_budget = inner.chunk_budget
        self.evaluations = 0
        self.calls = 0

    def point_words(self) -> int:
        return self.inner.point_words()

    def reset(self) -> None:
        """Zero the counters."""
        self.evaluations = 0
        self.calls = 0

    def _pairwise_kernel(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        self.calls += 1
        self.evaluations += int(I.size) * int(J.size)
        return self.inner._pairwise_kernel(I, J)


class CachedOracle(Metric):
    """Memoizes scalar pair distances; matrix calls pass through.

    The cache key is the unordered pair, relying on symmetry of the
    underlying metric.
    """

    def __init__(self, inner: Metric, max_entries: int = 1_000_000) -> None:
        self.inner = inner
        self.n = inner.n
        self.chunk_budget = inner.chunk_budget
        self.max_entries = max_entries
        self._cache: Dict[Tuple[int, int], float] = {}
        self.hits = 0
        self.misses = 0

    def point_words(self) -> int:
        return self.inner.point_words()

    def distance(self, i: int, j: int) -> float:
        key = (i, j) if i <= j else (j, i)
        val = self._cache.get(key)
        if val is not None:
            self.hits += 1
            return val
        self.misses += 1
        val = self.inner.distance(i, j)
        if len(self._cache) < self.max_entries:
            self._cache[key] = val
        return val

    def _pairwise_kernel(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        return self.inner._pairwise_kernel(I, J)
