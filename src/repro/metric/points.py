"""Point-set container shared by all coordinate-based metrics.

A :class:`PointSet` owns an ``(n, d)`` float array and assigns each row
the global id equal to its index.  All MPC algorithms address points by
these ids; shipping a point between machines costs ``d`` words (plus one
word for the id), which is how :mod:`repro.mpc.accounting` charges
messages.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


class PointSet:
    """Immutable collection of ``n`` points in ``d`` dimensions.

    Parameters
    ----------
    data:
        Array-like of shape ``(n, d)``; a 1-D array is treated as
        ``(n, 1)``.  The data is copied and made read-only so that
        simulated machines cannot mutate shared state behind the
        model's back.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Iterable) -> None:
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ValueError(f"expected a 2-D array of points, got ndim={arr.ndim}")
        if arr.shape[0] == 0:
            raise ValueError("a PointSet must contain at least one point")
        if not np.all(np.isfinite(arr)):
            raise ValueError("points must be finite")
        arr = arr.copy()
        arr.setflags(write=False)
        self._data = arr

    # -- basic properties ---------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """Read-only ``(n, d)`` coordinate array."""
        return self._data

    @property
    def n(self) -> int:
        """Number of points."""
        return self._data.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the ambient space."""
        return self._data.shape[1]

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PointSet(n={self.n}, dim={self.dim})"

    # -- access ---------------------------------------------------------------

    def ids(self) -> np.ndarray:
        """All global point ids, ``0 .. n-1``."""
        return np.arange(self.n, dtype=np.int64)

    def take(self, ids: Iterable[int]) -> np.ndarray:
        """Coordinates of the given ids, shape ``(len(ids), d)``."""
        idx = np.asarray(ids, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            raise IndexError("point id out of range")
        return self._data[idx]

    def point_words(self) -> int:
        """Words needed to ship one point over the simulated network."""
        return self.dim
