"""Shortest-path metric on a weighted undirected graph.

Implements its own Dijkstra (binary heap) rather than delegating to an
external solver, per the reproduction rule of building substrates from
scratch.  Two operating modes:

* ``precompute=True`` (default for n ≤ 2048): run Dijkstra from every
  source once and serve queries from the dense matrix.
* ``precompute=False``: run Dijkstra lazily per source row and memoize,
  which is the right trade-off when algorithms only touch a few rows.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.metric.base import Metric


def dijkstra(adj: Sequence[Sequence[Tuple[int, float]]], source: int) -> np.ndarray:
    """Single-source shortest paths on an adjacency list.

    ``adj[u]`` is a sequence of ``(v, weight)`` pairs.  Returns the
    distance array (``inf`` for unreachable vertices).
    """
    n = len(adj)
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


class GraphShortestPathMetric(Metric):
    """Metric induced by shortest-path distances on a connected graph.

    Parameters
    ----------
    n:
        Number of vertices (point ids are vertex ids).
    edges:
        Iterable of ``(u, v, weight)`` with positive weights.  The graph
        is treated as undirected.
    precompute:
        Force eager all-pairs computation; defaults to eager for
        ``n <= 2048`` and lazy beyond.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[int, int, float]],
        precompute: bool | None = None,
    ) -> None:
        if n <= 0:
            raise ValueError("graph must have at least one vertex")
        self.n = n
        adj: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for u, v, w in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range")
            if w < 0:
                raise ValueError("edge weights must be non-negative")
            adj[u].append((v, float(w)))
            adj[v].append((u, float(w)))
        self._adj = adj
        self._rows: Dict[int, np.ndarray] = {}
        if precompute is None:
            precompute = n <= 2048
        if precompute:
            for s in range(n):
                self._rows[s] = dijkstra(adj, s)
            self._check_connected()

    def _check_connected(self) -> None:
        if self._rows and not np.all(np.isfinite(self._rows[0])):
            raise ValueError(
                "graph is disconnected; shortest-path 'distances' would be "
                "infinite and the triangle structure breaks down"
            )

    def _row(self, s: int) -> np.ndarray:
        row = self._rows.get(s)
        if row is None:
            row = dijkstra(self._adj, s)
            self._rows[s] = row
        return row

    def _pairwise_kernel(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        out = np.empty((I.size, J.size), dtype=np.float64)
        for r, s in enumerate(I):
            out[r] = self._row(int(s))[J]
        return out
