"""Minkowski (Lᵖ) metrics, including Manhattan (p=1) and Chebyshev (p=∞)."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.metric.base import Metric
from repro.metric.points import PointSet


class MinkowskiMetric(Metric):
    """Lᵖ distance for any ``p ≥ 1`` (``p = math.inf`` gives Chebyshev)."""

    def __init__(self, points: PointSet | Iterable, p: float = 2.0) -> None:
        if p < 1:
            raise ValueError("Minkowski distance requires p >= 1 to be a metric")
        self.points = points if isinstance(points, PointSet) else PointSet(points)
        self.n = self.points.n
        self.p = float(p)

    def point_words(self) -> int:
        return self.points.dim

    def _pairwise_kernel(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        diff = np.abs(self.points.data[I][:, None, :] - self.points.data[J][None, :, :])
        if math.isinf(self.p):
            return diff.max(axis=2)
        if self.p == 1.0:
            return diff.sum(axis=2)
        return (diff**self.p).sum(axis=2) ** (1.0 / self.p)


class ManhattanMetric(MinkowskiMetric):
    """L¹ distance."""

    def __init__(self, points: PointSet | Iterable) -> None:
        super().__init__(points, p=1.0)


class ChebyshevMetric(MinkowskiMetric):
    """L^∞ distance."""

    def __init__(self, points: PointSet | Iterable) -> None:
        super().__init__(points, p=math.inf)
