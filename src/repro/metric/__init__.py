"""Metric-space substrate.

Every algorithm in :mod:`repro.core` talks to a :class:`~repro.metric.base.Metric`
through point *ids* only, matching the paper's O(1) distance-oracle model.
Concrete metrics:

* :class:`~repro.metric.euclidean.EuclideanMetric` — L² on coordinate data.
* :class:`~repro.metric.lp.MinkowskiMetric` / ``ManhattanMetric`` /
  ``ChebyshevMetric`` — general Lᵖ.
* :class:`~repro.metric.hamming.HammingMetric` — categorical vectors.
* :class:`~repro.metric.cosine.AngularMetric` — angular distance.
* :class:`~repro.metric.matrix_metric.MatrixMetric` — explicit matrix.
* :class:`~repro.metric.graph_metric.GraphShortestPathMetric` — weighted
  graph shortest paths (own Dijkstra, no external solver).

Wrappers in :mod:`repro.metric.oracle` add distance-evaluation counting
and caching without changing semantics.
"""

from repro.metric.base import Metric
from repro.metric.cosine import AngularMetric
from repro.metric.edit_distance import EditDistanceMetric
from repro.metric.euclidean import EuclideanMetric
from repro.metric.graph_metric import GraphShortestPathMetric
from repro.metric.hamming import HammingMetric
from repro.metric.haversine import HaversineMetric
from repro.metric.lp import ChebyshevMetric, ManhattanMetric, MinkowskiMetric
from repro.metric.matrix_metric import MatrixMetric
from repro.metric.oracle import CachedOracle, CountingOracle
from repro.metric.points import PointSet

__all__ = [
    "Metric",
    "PointSet",
    "EuclideanMetric",
    "MinkowskiMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "HammingMetric",
    "AngularMetric",
    "EditDistanceMetric",
    "HaversineMetric",
    "MatrixMetric",
    "GraphShortestPathMetric",
    "CountingOracle",
    "CachedOracle",
]
