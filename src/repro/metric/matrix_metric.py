"""Explicit distance-matrix metric.

Useful for tests (hand-crafted metrics), for adversarial instances, and
as the backend of :class:`~repro.metric.graph_metric.GraphShortestPathMetric`
after all-pairs precomputation.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.metric.base import Metric


class MatrixMetric(Metric):
    """Metric defined by an explicit symmetric ``(n, n)`` matrix.

    Parameters
    ----------
    matrix:
        Square array of pairwise distances.
    validate:
        When true (default), check symmetry, zero diagonal,
        non-negativity, and the triangle inequality (O(n³) — skip for
        large matrices you already trust).
    """

    def __init__(self, matrix: Iterable, validate: bool = True) -> None:
        D = np.asarray(matrix, dtype=np.float64)
        if D.ndim != 2 or D.shape[0] != D.shape[1]:
            raise ValueError("distance matrix must be square")
        if validate:
            if not np.allclose(D, D.T):
                raise ValueError("distance matrix must be symmetric")
            if not np.allclose(np.diag(D), 0.0):
                raise ValueError("distance matrix must have a zero diagonal")
            if np.any(D < 0):
                raise ValueError("distances must be non-negative")
            # triangle inequality: D[i, k] <= D[i, j] + D[j, k] for all j
            n = D.shape[0]
            if n <= 512:  # cubic check is fine at this size
                for j in range(n):
                    if np.any(D > D[:, [j]] + D[[j], :] + 1e-9):
                        raise ValueError("distance matrix violates the triangle inequality")
        self._D = D.copy()
        self._D.setflags(write=False)
        self.n = D.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """The read-only underlying distance matrix."""
        return self._D

    def _pairwise_kernel(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        return self._D[np.ix_(I, J)].astype(np.float64, copy=True)
