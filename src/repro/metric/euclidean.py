"""Euclidean (L²) metric over a :class:`~repro.metric.points.PointSet`."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.metric.base import Metric
from repro.metric.points import PointSet


class EuclideanMetric(Metric):
    """L² distances computed with the expanded-norm kernel.

    ``d(x, y)² = |x|² + |y|² − 2⟨x, y⟩`` — a single BLAS matmul per
    block instead of a broadcasted difference, which is both faster and
    lighter on memory for d ≫ 1 (per the optimization guide).
    """

    def __init__(self, points: PointSet | Iterable) -> None:
        self.points = points if isinstance(points, PointSet) else PointSet(points)
        self.n = self.points.n
        self._sqnorms = np.einsum("ij,ij->i", self.points.data, self.points.data)

    def point_words(self) -> int:
        return self.points.dim

    def _pairwise_kernel(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        X = self.points.data[I]
        Y = self.points.data[J]
        sq = self._sqnorms[I][:, None] + self._sqnorms[J][None, :] - 2.0 * (X @ Y.T)
        np.maximum(sq, 0.0, out=sq)
        out = np.sqrt(sq, out=sq)
        # the expanded form leaves ~1e-8 residue on identical inputs;
        # same-id pairs are exactly zero by definition
        out[I[:, None] == J[None, :]] = 0.0
        return out
