"""Angular metric (arccos of cosine similarity).

Plain "cosine distance" ``1 − cos θ`` violates the triangle inequality;
the *angle* ``θ = arccos(cos θ)`` is a true metric on the unit sphere,
so we use that.  Zero vectors are rejected at construction.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.metric.base import Metric
from repro.metric.points import PointSet


class AngularMetric(Metric):
    """Angle between vectors, in radians — a valid metric on directions."""

    def __init__(self, points: PointSet | Iterable) -> None:
        self.points = points if isinstance(points, PointSet) else PointSet(points)
        self.n = self.points.n
        norms = np.linalg.norm(self.points.data, axis=1)
        if np.any(norms == 0):
            raise ValueError("AngularMetric requires nonzero vectors")
        self._unit = self.points.data / norms[:, None]

    def point_words(self) -> int:
        return self.points.dim

    def _pairwise_kernel(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        cos = self._unit[I] @ self._unit[J].T
        np.clip(cos, -1.0, 1.0, out=cos)
        return np.arccos(cos)
