"""Abstract distance oracle.

The paper assumes "the distance between any two points in the space can
be obtained in O(1) time" (Section 2).  :class:`Metric` is that oracle:
subclasses implement one vectorized kernel, :meth:`_pairwise_kernel`,
and inherit id-based helpers used throughout the algorithms:

* :meth:`pairwise` — full cross-distance matrix between two id sets;
* :meth:`dist_to_set` — for each query id, distance to the nearest id in
  a target set (the ``d(p, T)`` of GMM);
* :meth:`radius` — the paper's ``r(X, Y) = max_{x∈X} d(x, Y)``;
* :meth:`diversity` — ``div(S)``, the minimum pairwise distance;
* :meth:`within` — threshold-graph adjacency queries for ``G_τ``.

All helpers chunk their work so that no intermediate matrix exceeds
``chunk_budget`` entries, keeping the simulator usable at n ≈ 10⁵
without materializing an n×n matrix (the guides' "be easy on the
memory" rule).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np

#: Maximum number of matrix entries materialized by one kernel call.
_DEFAULT_CHUNK_BUDGET = 4_000_000


def _as_ids(ids: Iterable[int]) -> np.ndarray:
    arr = np.asarray(ids, dtype=np.int64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr


class Metric(ABC):
    """Distance oracle over a fixed ground set of ``n`` points.

    Subclasses must set :attr:`n` (ground-set size) before use and
    implement :meth:`_pairwise_kernel`.
    """

    #: Number of points in the ground set.
    n: int

    chunk_budget: int = _DEFAULT_CHUNK_BUDGET

    # -- kernel to be provided by subclasses --------------------------------

    @abstractmethod
    def _pairwise_kernel(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        """Cross-distance matrix of shape ``(len(I), len(J))``.

        ``I`` and ``J`` are validated int64 id arrays.  Implementations
        must be pure (no caching of ids) and vectorized.
        """

    # -- words accounting -----------------------------------------------------

    def point_words(self) -> int:
        """Words to ship one point of this space over the network.

        Coordinate metrics return their dimensionality; oracle-only
        metrics (explicit matrix, graph) return 1 (an id suffices,
        because every machine can evaluate the oracle)."""
        return 1

    # -- validation -----------------------------------------------------------

    def _check(self, ids: np.ndarray) -> np.ndarray:
        if ids.size and (ids.min() < 0 or ids.max() >= self.n):
            raise IndexError(
                f"point id out of range [0, {self.n}) : "
                f"min={ids.min() if ids.size else None}, max={ids.max() if ids.size else None}"
            )
        return ids

    # -- public id-based API ---------------------------------------------------

    def distance(self, i: int, j: int) -> float:
        """Distance between two points by id."""
        out = self._pairwise_kernel(
            self._check(np.array([i], dtype=np.int64)),
            self._check(np.array([j], dtype=np.int64)),
        )
        return float(out[0, 0])

    def pairwise(self, I: Iterable[int], J: Iterable[int]) -> np.ndarray:
        """Cross-distance matrix between two id collections."""
        I = self._check(_as_ids(I))
        J = self._check(_as_ids(J))
        if I.size == 0 or J.size == 0:
            return np.zeros((I.size, J.size), dtype=np.float64)
        return self._pairwise_kernel(I, J)

    def dist_to_set(self, I: Iterable[int], T: Iterable[int]) -> np.ndarray:
        """``d(p, T)`` for each ``p`` in ``I``; ``inf`` if ``T`` is empty.

        Work is chunked over ``I`` so at most :attr:`chunk_budget`
        matrix entries exist at a time.
        """
        I = self._check(_as_ids(I))
        T = self._check(_as_ids(T))
        if T.size == 0:
            return np.full(I.size, np.inf, dtype=np.float64)
        if I.size == 0:
            return np.zeros(0, dtype=np.float64)
        out = np.empty(I.size, dtype=np.float64)
        step = max(1, self.chunk_budget // max(1, T.size))
        for lo in range(0, I.size, step):
            hi = min(I.size, lo + step)
            out[lo:hi] = self._pairwise_kernel(I[lo:hi], T).min(axis=1)
        return out

    def radius(self, X: Iterable[int], Y: Iterable[int]) -> float:
        """The paper's ``r(X, Y) = max_{x in X} d(x, Y)``.

        Returns 0.0 when ``X`` is empty and ``inf`` when ``Y`` is empty
        but ``X`` is not.
        """
        X = _as_ids(X)
        if X.size == 0:
            return 0.0
        return float(self.dist_to_set(X, Y).max())

    def diversity(self, S: Iterable[int]) -> float:
        """``div(S)``: minimum pairwise distance; ``inf`` for |S| < 2."""
        S = self._check(_as_ids(S))
        if S.size < 2:
            return float("inf")
        best = np.inf
        step = max(1, self.chunk_budget // max(1, S.size))
        for lo in range(0, S.size, step):
            hi = min(S.size, lo + step)
            block = self._pairwise_kernel(S[lo:hi], S)
            # mask the diagonal entries that fall inside this block
            for r in range(lo, hi):
                block[r - lo, r] = np.inf
            best = min(best, float(block.min()))
        return best

    def within(self, I: Iterable[int], J: Iterable[int], tau: float) -> np.ndarray:
        """Boolean matrix: ``d(i, j) <= tau`` — adjacency in ``G_τ``.

        Note the threshold graph includes self-loops here; callers that
        need simple-graph semantics mask the diagonal themselves.
        """
        return self.pairwise(I, J) <= tau

    def count_within(self, I: Iterable[int], J: Iterable[int], tau: float) -> np.ndarray:
        """For each ``i`` in ``I``: ``|{j in J : d(i,j) <= tau}|``.

        Chunked; used for threshold-graph degree counting.  Includes
        ``i`` itself when ``i ∈ J`` — callers subtract self-counts.
        """
        I = self._check(_as_ids(I))
        J = self._check(_as_ids(J))
        if I.size == 0:
            return np.zeros(0, dtype=np.int64)
        if J.size == 0:
            return np.zeros(I.size, dtype=np.int64)
        out = np.empty(I.size, dtype=np.int64)
        step = max(1, self.chunk_budget // max(1, J.size))
        for lo in range(0, I.size, step):
            hi = min(I.size, lo + step)
            out[lo:hi] = (self._pairwise_kernel(I[lo:hi], J) <= tau).sum(axis=1)
        return out

    def argmax_dist_to_set(self, I: Iterable[int], T: Iterable[int]) -> tuple[int, float]:
        """Id in ``I`` furthest from ``T`` and its distance (GMM's step)."""
        I = _as_ids(I)
        if I.size == 0:
            raise ValueError("empty candidate set")
        d = self.dist_to_set(I, T)
        pos = int(np.argmax(d))
        return int(I[pos]), float(d[pos])
