"""Metric-axiom spot checks used by the test suite and property tests."""

from __future__ import annotations

import numpy as np

from repro.metric.base import Metric


def check_metric_axioms(
    metric: Metric,
    sample_size: int = 32,
    rng: np.random.Generator | None = None,
    atol: float = 1e-9,
) -> None:
    """Raise ``AssertionError`` if a sampled triple violates a metric axiom.

    Checks, on a random id sample: ``d(x, x) = 0``, non-negativity,
    symmetry, and the triangle inequality.  Identity of indiscernibles is
    deliberately *not* required — the algorithms tolerate duplicate
    points (pseudometrics), and several workloads include duplicates on
    purpose.
    """
    rng = rng or np.random.default_rng(0)
    ids = rng.choice(metric.n, size=min(sample_size, metric.n), replace=False)
    D = metric.pairwise(ids, ids)
    scale_tol = max(atol, 1e-7 * (1.0 + float(D.max())))
    if not np.allclose(np.diag(D), 0.0, atol=scale_tol):
        raise AssertionError("d(x, x) != 0 for some sampled point")
    if np.any(D < -scale_tol):
        raise AssertionError("negative distance found")
    if not np.allclose(D, D.T, atol=scale_tol):
        raise AssertionError("distance is not symmetric")
    k = D.shape[0]
    for j in range(k):
        if np.any(D > D[:, [j]] + D[[j], :] + max(atol, 1e-7 * (1 + D.max()))):
            raise AssertionError("triangle inequality violated")
