"""Hamming metric over categorical vectors."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.metric.base import Metric
from repro.metric.points import PointSet


class HammingMetric(Metric):
    """Number of coordinates on which two categorical vectors differ.

    Input values are compared exactly; any numeric coding of categories
    works.  This is a metric (it is the L⁰ "distance" on the discrete
    product space).
    """

    def __init__(self, points: PointSet | Iterable) -> None:
        self.points = points if isinstance(points, PointSet) else PointSet(points)
        self.n = self.points.n

    def point_words(self) -> int:
        return self.points.dim

    def _pairwise_kernel(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        X = self.points.data[I][:, None, :]
        Y = self.points.data[J][None, :, :]
        return (X != Y).sum(axis=2).astype(np.float64)
