"""Levenshtein (edit) distance metric over a list of strings.

Adds a genuinely non-geometric metric space to the substrate: the
paper's guarantees hold in *any* metric, and edit distance is the
canonical example with no coordinates at all.  Distances are computed
with the standard O(|a|·|b|) two-row dynamic program and memoized,
since the oracle model bills each lookup as O(1).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.metric.base import Metric


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (insert/delete/substitute, unit costs)."""
    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        cur = [i]
        for j, cb in enumerate(b, start=1):
            cur.append(min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + (ca != cb)))
        prev = cur
    return prev[-1]


class EditDistanceMetric(Metric):
    """Metric over a fixed list of strings, by Levenshtein distance."""

    def __init__(self, strings: Sequence[str]) -> None:
        self.strings = list(strings)
        if not self.strings:
            raise ValueError("need at least one string")
        self.n = len(self.strings)
        self._cache: Dict[Tuple[int, int], float] = {}

    def point_words(self) -> int:
        # a string travels as its characters; use the mean length as the
        # per-point word cost (rounded up, at least 1)
        mean_len = sum(len(s) for s in self.strings) / self.n
        return max(1, int(np.ceil(mean_len)))

    def _dist(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        key = (i, j) if i < j else (j, i)
        val = self._cache.get(key)
        if val is None:
            val = float(levenshtein(self.strings[i], self.strings[j]))
            self._cache[key] = val
        return val

    def _pairwise_kernel(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        out = np.empty((I.size, J.size), dtype=np.float64)
        for r, i in enumerate(I):
            for c, j in enumerate(J):
                out[r, c] = self._dist(int(i), int(j))
        return out
