"""Great-circle (haversine) metric on the sphere.

Points are (latitude, longitude) pairs in degrees; distances are
geodesic arc lengths on a sphere of configurable radius (Earth's mean
radius by default, giving kilometres).  Geodesic distance on a sphere
is a true metric, and it is the natural space for facility-location
workloads over geographic data.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.metric.base import Metric
from repro.metric.points import PointSet

#: Earth's mean radius in kilometres.
EARTH_RADIUS_KM = 6371.0088


class HaversineMetric(Metric):
    """Great-circle distance between (lat, lon)-degree points.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of latitudes and longitudes in degrees
        (latitudes in [-90, 90], longitudes in [-180, 360)).
    radius:
        Sphere radius; the default yields kilometres on Earth.
    """

    def __init__(self, points: PointSet | Iterable, radius: float = EARTH_RADIUS_KM) -> None:
        self.points = points if isinstance(points, PointSet) else PointSet(points)
        if self.points.dim != 2:
            raise ValueError("HaversineMetric needs (lat, lon) pairs")
        lat = self.points.data[:, 0]
        lon = self.points.data[:, 1]
        if np.any(np.abs(lat) > 90.0):
            raise ValueError("latitudes must lie in [-90, 90] degrees")
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.n = self.points.n
        self.radius = float(radius)
        self._lat = np.radians(lat)
        self._lon = np.radians(lon)

    def point_words(self) -> int:
        return 2

    def _pairwise_kernel(self, I: np.ndarray, J: np.ndarray) -> np.ndarray:
        lat1 = self._lat[I][:, None]
        lat2 = self._lat[J][None, :]
        dlat = lat2 - lat1
        dlon = self._lon[J][None, :] - self._lon[I][:, None]
        a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
        np.clip(a, 0.0, 1.0, out=a)
        out = 2.0 * self.radius * np.arcsin(np.sqrt(a))
        out[I[:, None] == J[None, :]] = 0.0
        return out
