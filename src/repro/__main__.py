"""``python -m repro`` — the same entry point as the ``repro`` script.

Useful where the console script is not on ``PATH`` (bench harnesses,
subprocess spawns with an explicit ``PYTHONPATH``).
"""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
