"""Optional hard limits on the simulated machines.

The MPC model constrains (a) local memory and (b) words moved per
machine per round.  By default the simulator only *measures*; attach a
:class:`Limits` to make it *enforce*, raising the corresponding
exception the moment a machine oversteps — this powers the
failure-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import CommunicationLimitExceeded, MemoryLimitExceeded


@dataclass(frozen=True)
class Limits:
    """Hard caps, in words.  ``None`` disables a cap.

    Attributes
    ----------
    memory_words:
        Maximum words of point data a machine may hold (its partition
        plus everything it has received).
    comm_words_per_round:
        Maximum sent+received words for one machine in one round.
    """

    memory_words: Optional[int] = None
    comm_words_per_round: Optional[int] = None

    def check_memory(self, machine_id: int, used: int) -> None:
        if self.memory_words is not None and used > self.memory_words:
            raise MemoryLimitExceeded(machine_id, used, self.memory_words)

    def check_comm(self, machine_id: int, round_no: int, used: int) -> None:
        if self.comm_words_per_round is not None and used > self.comm_words_per_round:
            raise CommunicationLimitExceeded(
                machine_id, round_no, used, self.comm_words_per_round
            )

    @classmethod
    def theory(cls, n: int, m: int, k: int, dim: int, slack: float = 64.0) -> "Limits":
        """Limits matching the paper's Õ(n/m + mk) memory and Õ(mk)
        communication, with a configurable polylog slack factor."""
        import math

        ln_n = max(1.0, math.log(max(n, 2)))
        mem = int(slack * (n / m + m * k) * ln_n * dim)
        comm = int(slack * m * k * ln_n * dim)
        return cls(memory_words=mem, comm_words_per_round=comm)
