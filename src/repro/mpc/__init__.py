"""Massively-parallel-computation (MPC) simulator.

Implements the model of Karloff–Suri–Vassilvitskii as used by the paper:
``m`` machines, each holding a private partition of the input; execution
proceeds in synchronous rounds; within a round machines compute locally
and post messages, which are delivered at the start of the next round.
The simulator charges every message to its sender and receiver in
*words* (a point costs its dimensionality, an id or scalar costs 1) and
records per-round, per-machine communication so experiments can check
the paper's Õ(mk) bounds directly.

Strict *known-point* mode enforces the distance-oracle discipline: a
machine may only evaluate distances among points it stores locally or
has received in a message.
"""

from repro.mpc.accounting import ClusterStats, RoundStats
from repro.mpc.cluster import MPCCluster
from repro.mpc.executor import (
    BACKENDS,
    ExecutionBackend,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    get_executor,
)
from repro.mpc.remote import (
    REMOTE_WORKERS_ENV_VAR,
    RemoteExecutor,
    WorkerAgent,
    parse_worker_addresses,
)
from repro.mpc.trace import MessageTrace, TraceEvent
from repro.mpc.machine import Machine
from repro.mpc.message import Ids, Message, PointBatch, payload_words
from repro.mpc.limits import Limits
from repro.mpc.partition import (
    adversarial_partition,
    block_partition,
    get_partitioner,
    random_partition,
    skewed_partition,
)

__all__ = [
    "MPCCluster",
    "Machine",
    "Message",
    "PointBatch",
    "Ids",
    "payload_words",
    "Limits",
    "BACKENDS",
    "ExecutionBackend",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "RemoteExecutor",
    "WorkerAgent",
    "REMOTE_WORKERS_ENV_VAR",
    "parse_worker_addresses",
    "get_executor",
    "MessageTrace",
    "TraceEvent",
    "ClusterStats",
    "RoundStats",
    "random_partition",
    "block_partition",
    "skewed_partition",
    "adversarial_partition",
    "get_partitioner",
]
