"""Execution backends for per-machine local computation.

Within an MPC round, machines compute independently — the simulator can
therefore fan the per-machine work out to an execution backend.  Four
are provided, all implementing the :class:`ExecutionBackend` protocol
(the fourth, the multi-host :class:`~repro.mpc.remote.RemoteExecutor`,
lives in :mod:`repro.mpc.remote`):

* :class:`SerialExecutor` — one task after another (the default);
* :class:`ThreadedExecutor` — a shared thread pool; the heavy kernels
  are numpy calls that release the GIL, so threads overlap them with
  zero marshalling cost;
* :class:`ProcessExecutor` — real OS processes, forked per batch, for
  metrics whose kernels hold the GIL (edit distance, graph search,
  python callables) or very large instances.  The point matrix is
  migrated into :mod:`multiprocessing.shared_memory` (see
  :mod:`repro.mpc.shm`) so workers read it without pickling a byte of
  point data; only the small per-machine results travel back.

Determinism is preserved by construction on every backend: each machine
draws only from its *own* RNG stream inside its own task, so the
schedule cannot change any stream's sequence.  For processes, the
worker additionally returns the machine's post-task RNG state and the
distance-oracle counter deltas, which the driver replays — serial,
threaded, and process runs are bit-identical, including the
:class:`~repro.metric.oracle.CountingOracle` ledger
(``tests/test_mpc_executor.py`` asserts it).

The process-backend task contract is the MPC local-computation contract
sharpened one notch: a task may read anything, but the only *writes*
that survive are its return value and its machine's RNG stream.  All
callbacks in :mod:`repro.core` obey this (they communicate results via
``cluster.send``, never via driver-side mutation).
"""

from __future__ import annotations

import os
import pickle
import sys
import time
import traceback
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Protocol, Sequence, Tuple, TypeVar, runtime_checkable

from repro.mpc.shm import SharedArray, share_metric_points
from repro.obs.events import ExecSpanRecord, FaultEvent
from repro.obs.logging import get_logger

T = TypeVar("T")

_log = get_logger("repro.mpc.executor")


@runtime_checkable
class ExecutionBackend(Protocol):
    """What :class:`~repro.mpc.cluster.MPCCluster` requires of a backend.

    ``map_indexed(fn, count)`` evaluates ``fn(i)`` for ``i in
    range(count)`` and returns the results in index order; exceptions
    propagate to the caller.  ``shutdown()`` releases pools and shared
    resources and must be idempotent.  Backends may optionally provide
    ``bind(cluster)`` (called once from the cluster constructor) and
    ``map_machines(fn, machines, metric=None)`` for machine-aware
    dispatch with state synchronisation.
    """

    def map_indexed(self, fn: Callable[[int], T], count: int) -> List[T]: ...

    def shutdown(self) -> None: ...


#: environment variable consulted when a worker count is not given explicitly
WORKERS_ENV_VAR = "REPRO_WORKERS"


def workers_from_env() -> Optional[int]:
    """Worker count from :data:`WORKERS_ENV_VAR`, or ``None`` if unset.

    An unset or empty variable means "use the default"; anything else
    must be a positive integer (misconfiguration fails loudly rather
    than silently running at the wrong parallelism).
    """
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV_VAR}={raw!r} is not an integer worker count"
        ) from None
    if value < 1:
        raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {value}")
    return value


class SerialExecutor:
    """Run per-machine tasks one after another (the default)."""

    def map_indexed(self, fn: Callable[[int], T], count: int) -> List[T]:
        """Evaluate ``fn(i)`` for ``i in range(count)``, in order."""
        return [fn(i) for i in range(count)]

    def effective_workers(self, count: int | None = None) -> int:
        """Degree of parallelism actually used (always 1)."""
        return 1

    def shutdown(self) -> None:  # pragma: no cover - nothing to release
        pass


class ThreadedExecutor:
    """Fan per-machine tasks out to a shared thread pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine count passed per call (capped
        at 32).
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure(self, count: int) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self.max_workers or min(32, max(1, count))
            self._pool = ThreadPoolExecutor(max_workers=workers)
        return self._pool

    def map_indexed(self, fn: Callable[[int], T], count: int) -> List[T]:
        """Evaluate ``fn(i)`` for ``i in range(count)`` concurrently,
        returning results in index order (exceptions propagate)."""
        if count <= 1:
            return [fn(i) for i in range(count)]
        pool = self._ensure(count)
        return list(pool.map(fn, range(count)))

    def effective_workers(self, count: int | None = None) -> int:
        """Pool size a ``count``-task batch would actually run on.

        Mirrors :meth:`_ensure`: an already-created pool keeps its
        size, an explicit ``max_workers`` wins otherwise, and with
        neither the pool is sized from the batch — so ``count`` is
        required in that case rather than silently reported as 1.
        """
        if self._pool is not None:
            return self._pool._max_workers
        if self.max_workers:
            return self.max_workers
        if count is None:
            raise ValueError(
                "ThreadedExecutor sizes its pool from the first batch; "
                "pass count (or construct with max_workers) to compute "
                "effective_workers"
            )
        return min(32, max(1, count))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.shutdown()


class _WorkerFailure(Exception):
    """Forked workers failed beyond repair: a task raised a real
    exception, or dead/undecodable chunks outlived the retry budget.
    The message aggregates *every* failed chunk's reason."""


def _counting_layers(metric) -> list:
    """Every CountingOracle in the metric's wrapper chain (outermost first)."""
    layers = []
    seen = set()
    while metric is not None and id(metric) not in seen:
        seen.add(id(metric))
        if hasattr(metric, "evaluations") and hasattr(metric, "calls"):
            layers.append(metric)
        metric = getattr(metric, "inner", None)
    return layers


class ProcessExecutor:
    """Fork real OS processes for per-machine local work.

    Workers are forked per batch: each inherits a consistent snapshot of
    the driver (machines, RNG streams, the round's driver-side arrays)
    at zero marshalling cost, computes its strided share of the tasks,
    and ships only the results back through a pipe.  The point matrix is
    migrated into shared memory at :meth:`bind` time so even many rounds
    of copy-on-write churn never duplicate it.

    Fault tolerance is layered (see ``docs/fault_tolerance.md``):

    1. a chunk whose worker dies without reporting, or ships an
       undecodable payload, is **re-executed alone** — healthy chunks'
       results are kept — up to :attr:`chunk_retries` times;
    2. beyond that (or when a task raises a real exception, which is
       deterministic and not worth retrying) the whole batch **falls
       back to a serial re-run in the driver**, with the reason
       appended to :attr:`degradations`.

    Both rungs preserve bit-identity: workers never mutate driver
    state, so re-executing a chunk (in a fresh fork or in the driver)
    reproduces exactly what the lost worker would have returned, and
    ``map_machines``'s RNG-state/oracle-delta replay then applies the
    same synchronisation it always does.  :attr:`fallback_reason` keeps
    its original meaning — a *permanent* platform degradation (no
    ``fork()``), distinct from the per-batch entries in
    :attr:`degradations`.

    Parameters
    ----------
    max_workers:
        Number of forked workers per batch; defaults to the
        :data:`WORKERS_ENV_VAR` (``REPRO_WORKERS``) environment
        variable when set, else the CPU count.
    faults:
        Optional :class:`~repro.faults.FaultPlan`; its executor layer
        (worker kill / payload corrupt / delay) is injected into forked
        workers.  Usually wired through
        :class:`~repro.mpc.cluster.MPCCluster`'s ``faults`` argument.
    chunk_retries:
        Times a dead/undecodable chunk is re-executed before the batch
        degrades to a serial re-run.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        faults=None,
        chunk_retries: int = 2,
    ) -> None:
        # attributes first: __del__ must survive a failed env lookup below
        self.max_workers = max_workers
        self.fallback_reason: Optional[str] = None
        self._shared: List[SharedArray] = []
        if chunk_retries < 0:
            raise ValueError(f"chunk_retries must be >= 0, got {chunk_retries}")
        self.faults = faults
        self.chunk_retries = chunk_retries
        #: per-batch degradation reasons (serial re-runs taken and why)
        self.degradations: List[str] = []
        # recovery / injection counters (see recovery_stats())
        self.faults_injected = 0
        self.chunk_retries_used = 0
        self.serial_fallbacks = 0
        #: worker slots that died permanently (outlived the chunk retry
        #: budget) — subtracted from the parallelism this executor
        #: *reports*, so bench artifacts record the surviving pool
        self.workers_lost = 0
        self._batch_no = 0
        self._cluster_ref: Optional[weakref.ref] = None
        if not hasattr(os, "fork") or sys.platform in ("win32", "emscripten"):
            self.fallback_reason = f"fork() unavailable on {sys.platform}"
        if max_workers is None:
            self.max_workers = workers_from_env()

    # -- lifecycle ----------------------------------------------------------

    def bind(self, cluster) -> None:
        """Adopt a cluster: move its point matrix into shared memory and
        keep a (weak) back-reference for fault/recovery observability."""
        self._cluster_ref = weakref.ref(cluster)
        if self.fallback_reason is not None:
            return
        handle = share_metric_points(cluster.metric)
        if handle is not None:
            self._shared.append(handle)

    def set_fault_plan(self, faults) -> None:
        """Install (or clear, with ``None``) the executor-layer fault plan."""
        self.faults = faults

    def recovery_stats(self) -> dict:
        """Injection/recovery counters, for bench artifacts and the
        service's job payloads."""
        return {
            "faults_injected": self.faults_injected,
            "chunk_retries": self.chunk_retries_used,
            "serial_fallbacks": self.serial_fallbacks,
            "degradations": list(self.degradations),
            "workers_lost": self.workers_lost,
            "effective_workers": self.effective_workers(),
        }

    def _emit_fault(self, kind: str, injected: bool, target: str = "",
                    attempt: int = 0, detail: str = "") -> None:
        """Report a fault/recovery to the bound cluster's observers."""
        cluster = self._cluster_ref() if self._cluster_ref is not None else None
        if cluster is None:
            return
        cluster.obs.emit_fault(
            FaultEvent(
                layer="executor", kind=kind, injected=injected,
                round_no=cluster.round_no, target=target,
                attempt=attempt, detail=detail,
            )
        )

    def shutdown(self) -> None:
        """Unlink shared segments (mappings stay valid; idempotent)."""
        for handle in self._shared:
            handle.release()
        self._shared = []

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.shutdown()

    # -- task execution -----------------------------------------------------

    def _workers_for(self, count: int) -> int:
        return max(1, min(self.max_workers or (os.cpu_count() or 1), count))

    def effective_workers(self, count: int | None = None) -> int:
        """Workers a ``count``-task batch can actually be trusted to.

        Accounts for the configured cap, the CPU count, the batch size,
        the serial fallback, *and* worker slots lost permanently
        mid-run (chunks that outlived the retry budget) — this is the
        surviving pool a bench artifact should record, not the
        configured one.
        """
        if self.fallback_reason is not None:
            return 1
        base = max(1, (self.max_workers or (os.cpu_count() or 1)) - self.workers_lost)
        if count is None:
            return base
        return max(1, min(base, count))

    def map_indexed(self, fn: Callable[[int], T], count: int) -> List[T]:
        """Evaluate ``fn(i)`` for ``i in range(count)`` across forked
        workers, in index order; falls back to serial when parallelism
        cannot help or cannot be trusted."""
        if count <= 1 or self.fallback_reason is not None or self._workers_for(count) <= 1:
            return [fn(i) for i in range(count)]
        try:
            return self._fork_map(fn, count)
        except _WorkerFailure as exc:
            # Workers never mutate driver state, so a clean re-run in the
            # driver reproduces the exact result — or the real exception,
            # with a real traceback.
            self._record_serial_fallback(str(exc))
            return [fn(i) for i in range(count)]

    def map_machines(self, fn, machines: Sequence, metric=None) -> list:
        """Machine-aware dispatch with state synchronisation.

        Each worker returns ``(value, rng_state, oracle_deltas)`` for
        its machines; the driver replays the RNG states and counter
        deltas so a process run is bit-identical to a serial one — both
        the algorithmic results and the CountingOracle ledger.
        """
        count = len(machines)
        if count <= 1 or self.fallback_reason is not None or self._workers_for(count) <= 1:
            return [fn(mach) for mach in machines]

        counting = _counting_layers(metric)

        def task(i: int):
            mach = machines[i]
            before = [(c.calls, c.evaluations) for c in counting]
            value = fn(mach)
            deltas = [
                (c.calls - b_calls, c.evaluations - b_evals)
                for c, (b_calls, b_evals) in zip(counting, before)
            ]
            return value, mach.rng.bit_generator.state, deltas

        try:
            packed = self._fork_map(task, count)
        except _WorkerFailure as exc:
            self._record_serial_fallback(str(exc))
            return [fn(mach) for mach in machines]

        values = []
        for i, (value, rng_state, deltas) in enumerate(packed):
            machines[i].rng.bit_generator.state = rng_state
            for layer, (d_calls, d_evals) in zip(counting, deltas):
                layer.calls += d_calls
                layer.evaluations += d_evals
            values.append(value)
        return values

    def _record_serial_fallback(self, reason: str) -> None:
        """A batch degraded to a serial driver re-run; remember why."""
        self.serial_fallbacks += 1
        self.degradations.append(reason)
        self._emit_fault("serial_fallback", injected=False, detail=reason)
        _log.warning(
            "executor batch degraded to serial re-run",
            extra={"reason": reason, "serial_fallbacks": self.serial_fallbacks},
        )

    def _fork_map(self, task: Callable[[int], T], count: int) -> List[T]:
        """Fork one worker per strided index chunk; gather over pipes.

        Chunks whose worker dies without reporting or ships garbage are
        re-forked alone — healthy chunks' results are kept — up to
        :attr:`chunk_retries` times.  A task that raises a real
        exception aborts immediately: it is deterministic, and the
        serial fallback will reproduce it with a full traceback.
        :class:`_WorkerFailure` messages carry *every* failed chunk's
        reason, not just the first.
        """
        workers = self._workers_for(count)
        self._batch_no += 1
        batch_no = self._batch_no
        chunks = [list(range(w, count, workers)) for w in range(workers)]
        pending = [(w, chunk) for w, chunk in enumerate(chunks) if chunk]
        results: List[T] = [None] * count  # type: ignore[list-item]
        earlier_reasons: list[str] = []
        attempt = 0
        while True:
            outcomes = self._run_chunks(task, pending, batch_no, attempt)
            fatal: list[str] = []
            retryable: list[tuple[int, list[int]]] = []
            reasons: list[str] = []
            for (widx, chunk), (status, payload) in zip(pending, outcomes):
                if status == "ok":
                    for i, value in zip(chunk, payload):
                        results[i] = value
                elif status == "fatal":
                    fatal.append(str(payload))
                else:  # "lost": died without reporting / undecodable payload
                    reasons.append(str(payload))
                    retryable.append((widx, chunk))
            if fatal:
                raise _WorkerFailure("; ".join(fatal + reasons))
            if not retryable:
                return results
            if attempt >= self.chunk_retries:
                # these worker slots died permanently: report the
                # surviving pool from here on (see effective_workers)
                self.workers_lost = max(self.workers_lost, len(retryable))
                raise _WorkerFailure(
                    "; ".join(earlier_reasons + reasons)
                    + f" (chunk retry budget {self.chunk_retries} exhausted)"
                )
            earlier_reasons.extend(reasons)
            self.chunk_retries_used += len(retryable)
            for (widx, chunk), reason in zip(retryable, reasons):
                self._emit_fault(
                    "chunk_retry", injected=False,
                    target=f"worker {widx} chunk {chunk[:3]}",
                    attempt=attempt + 1, detail=reason,
                )
                _log.warning(
                    "executor chunk lost; re-forking",
                    extra={"worker": widx, "batch": batch_no,
                           "attempt": attempt + 1, "reason": reason},
                )
            pending = retryable
            attempt += 1

    def _run_chunks(
        self,
        task: Callable[[int], T],
        pending: Sequence[Tuple[int, List[int]]],
        batch_no: int,
        attempt: int,
    ) -> List[Tuple[str, object]]:
        """Fork one worker per pending ``(worker_index, chunk)``; gather.

        Returns one ``(status, payload)`` per chunk, in order:
        ``("ok", values)``, ``("fatal", traceback_text)`` for a task
        exception, or ``("lost", reason)`` for a worker that died
        without reporting or shipped an undecodable payload.  When a
        fault plan is installed, its executor-layer faults are injected
        here — decided in the driver (so observers see them) but enacted
        inside the forked child.

        Each chunk's trace context is derived in the driver *before*
        forking (so the id tree is deterministic), shipped into the
        child by fork inheritance, and the child returns a timed span
        record alongside its values — the driver merges it into the
        bound cluster's observers as an
        :class:`~repro.obs.events.ExecSpanRecord`.
        """
        plan = self.faults
        cluster = self._cluster_ref() if self._cluster_ref is not None else None
        parent_ctx = cluster.obs.trace_parent() if cluster is not None else None
        procs: list[tuple[int, int, list[int]]] = []
        for widx, chunk in pending:
            chunk_ctx = (
                parent_ctx.child("exec/chunk") if parent_ctx is not None else None
            )
            action = plan.worker_fault(batch_no, widx, attempt) if plan else None
            if action is not None:
                self.faults_injected += 1
                kind = {"kill": "worker_kill", "corrupt": "payload_corrupt",
                        "delay": "worker_delay"}[action]
                self._emit_fault(
                    kind, injected=True,
                    target=f"worker {widx} chunk {chunk[:3]}",
                    attempt=attempt, detail=f"batch {batch_no}",
                )
                _log.info(
                    "executor fault injected",
                    extra={"kind": kind, "worker": widx,
                           "batch": batch_no, "attempt": attempt},
                )
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:  # worker
                os.close(read_fd)
                if action == "kill":
                    # injected crash: exit before reporting a byte, like
                    # an OOM-killed or segfaulted worker
                    os._exit(1)
                if action == "delay":
                    time.sleep(plan.worker_delay_s)
                status = 0
                try:
                    t_start = time.perf_counter()
                    values = [task(i) for i in chunk]
                    span = {
                        "name": "exec/chunk",
                        "worker": widx,
                        "batch": batch_no,
                        "attempt": attempt,
                        "chunk_size": len(chunk),
                        "first_index": chunk[0],
                        "os_pid": os.getpid(),
                        "start_time": t_start,
                        "end_time": time.perf_counter(),
                    }
                    if chunk_ctx is not None:
                        span["trace_id"] = chunk_ctx.trace_id
                        span["span_id"] = chunk_ctx.span_id
                        span["parent_span_id"] = chunk_ctx.parent_id
                    payload = pickle.dumps(
                        (values, span), protocol=pickle.HIGHEST_PROTOCOL
                    )
                except BaseException:
                    payload = pickle.dumps(traceback.format_exc())
                    status = 1
                if action == "corrupt":
                    # injected bit-rot: ship bytes that cannot unpickle
                    payload = b"\xde\xad\xbe\xef" + payload[:8]
                try:
                    with os.fdopen(write_fd, "wb") as pipe:
                        pipe.write(bytes([status]))
                        pipe.write(payload)
                finally:
                    # hard exit: never run driver atexit/teardown in a worker
                    os._exit(0)
            os.close(write_fd)
            procs.append((pid, read_fd, chunk))

        outcomes: List[Tuple[str, object]] = []
        for pid, read_fd, chunk in procs:
            with os.fdopen(read_fd, "rb") as pipe:
                blob = pipe.read()
            os.waitpid(pid, 0)
            if not blob:
                outcomes.append(
                    ("lost", f"worker {pid} died without reporting (chunk {chunk[:3]}…)")
                )
                continue
            try:
                data = pickle.loads(blob[1:])
            except Exception:
                outcomes.append(
                    ("lost",
                     f"worker {pid} returned an undecodable payload (chunk {chunk[:3]}…)")
                )
                continue
            if blob[0] != 0:
                outcomes.append(("fatal", str(data)))
            else:
                values, span = data
                if cluster is not None:
                    cluster.obs.emit_exec_span(ExecSpanRecord(**span))
                outcomes.append(("ok", values))
        return outcomes


#: canonical backend names accepted by the CLI and the solver facade
BACKENDS = ("serial", "thread", "process", "remote")

_ALIASES = {
    "serial": "serial",
    "thread": "thread",
    "threaded": "thread",
    "threads": "thread",
    "process": "process",
    "processes": "process",
    "fork": "process",
    "remote": "remote",
    "sockets": "remote",
}


def get_executor(
    backend: str = "serial",
    max_workers: int | None = None,
    workers=None,
):
    """Build an execution backend from its name.

    ``backend`` is one of ``'serial'``, ``'thread'``/``'threaded'``,
    ``'process'`` (alias ``'fork'``), or ``'remote'`` (alias
    ``'sockets'``); an :class:`ExecutionBackend` instance passes
    through unchanged.  ``workers`` carries remote worker addresses
    (``'host:port,host:port'`` or a list) for the remote backend —
    when omitted the :data:`~repro.mpc.remote.REMOTE_WORKERS_ENV_VAR`
    environment variable is consulted; it is ignored by the local
    backends.
    """
    if not isinstance(backend, str):
        if isinstance(backend, ExecutionBackend):
            return backend
        raise TypeError(f"not an execution backend: {backend!r}")
    name = _ALIASES.get(backend.lower())
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadedExecutor(max_workers=max_workers)
    if name == "process":
        return ProcessExecutor(max_workers=max_workers)
    if name == "remote":
        from repro.mpc.remote import RemoteExecutor  # avoid an import cycle

        return RemoteExecutor(workers, max_workers=max_workers)
    aliases = sorted(set(_ALIASES) - set(BACKENDS))
    raise ValueError(
        f"unknown backend {backend!r}; valid backends: "
        f"{', '.join(repr(b) for b in BACKENDS)} "
        f"(aliases: {', '.join(repr(a) for a in aliases)})"
    )
