"""Parallel execution of per-machine local computation.

Within an MPC round, machines compute independently — the simulator can
therefore fan the per-machine work out to a thread pool.  Threads (not
processes) are the right tool here: the heavy kernels are numpy calls
that release the GIL, and machine state stays shared-memory without
pickling.

Determinism is preserved by construction: each machine draws only from
its *own* RNG stream inside its own task, so the schedule cannot change
any stream's sequence.  `tests/test_mpc_executor.py` asserts serial and
threaded runs produce bit-identical results.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, TypeVar

T = TypeVar("T")


class SerialExecutor:
    """Run per-machine tasks one after another (the default)."""

    def map_indexed(self, fn: Callable[[int], T], count: int) -> List[T]:
        """Evaluate ``fn(i)`` for ``i in range(count)``, in order."""
        return [fn(i) for i in range(count)]

    def shutdown(self) -> None:  # pragma: no cover - nothing to release
        pass


class ThreadedExecutor:
    """Fan per-machine tasks out to a shared thread pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine count passed per call (capped
        at 32).
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure(self, count: int) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self.max_workers or min(32, max(1, count))
            self._pool = ThreadPoolExecutor(max_workers=workers)
        return self._pool

    def map_indexed(self, fn: Callable[[int], T], count: int) -> List[T]:
        """Evaluate ``fn(i)`` for ``i in range(count)`` concurrently,
        returning results in index order (exceptions propagate)."""
        if count <= 1:
            return [fn(i) for i in range(count)]
        pool = self._ensure(count)
        return list(pool.map(fn, range(count)))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.shutdown()
