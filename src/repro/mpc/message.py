"""Message envelopes and payload word-size accounting.

Word model (DESIGN.md §3, choice 5): one word = one scalar.  A *point*
shipped between machines carries its id plus its coordinates, costing
``1 + point_words`` words.  An id alone (referencing a point the
receiver already knows, or pure bookkeeping) costs 1 word, as does any
scalar.  Containers cost the sum of their parts.

Payload wrappers:

* :class:`PointBatch` — ids whose coordinates travel with the message.
  On delivery the receiver marks these ids *known*.
* :class:`Ids` — bare id references (no coordinates).
* plain ints / floats / bools / numpy scalars — 1 word each.
* tuples / lists / dicts — recursive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np


@dataclass(frozen=True)
class PointBatch:
    """A batch of points shipped with coordinates.

    ``ids`` is stored as an int64 array.  Extra per-point scalar columns
    (e.g. approximate degrees travelling with their vertices) can be
    attached via ``columns``; each costs one word per point.
    """

    ids: np.ndarray
    columns: dict = field(default_factory=dict)

    def __init__(self, ids: Iterable[int], columns: dict | None = None) -> None:
        object.__setattr__(self, "ids", np.asarray(ids, dtype=np.int64).reshape(-1))
        object.__setattr__(self, "columns", dict(columns or {}))
        for name, col in self.columns.items():
            arr = np.asarray(col, dtype=np.float64).reshape(-1)
            if arr.size != self.ids.size:
                raise ValueError(f"column {name!r} length mismatch")
            self.columns[name] = arr

    def words(self, point_words: int) -> int:
        """Total words: id + coordinates + one word per extra column."""
        return int(self.ids.size) * (1 + point_words + len(self.columns))


@dataclass(frozen=True)
class Ids:
    """Bare id references — one word each, no coordinates attached."""

    ids: np.ndarray

    def __init__(self, ids: Iterable[int]) -> None:
        object.__setattr__(self, "ids", np.asarray(ids, dtype=np.int64).reshape(-1))

    def words(self) -> int:
        return int(self.ids.size)


def payload_words(payload: Any, point_words: int) -> int:
    """Recursive word count of an arbitrary payload."""
    if payload is None:
        return 0
    if isinstance(payload, PointBatch):
        return payload.words(point_words)
    if isinstance(payload, Ids):
        return payload.words()
    if isinstance(payload, (bool, int, float, np.integer, np.floating, np.bool_)):
        return 1
    if isinstance(payload, str):
        return 1  # tags / labels count as a single word
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if isinstance(payload, dict):
        return sum(payload_words(v, point_words) for v in payload.values())
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(payload_words(v, point_words) for v in payload)
    raise TypeError(f"cannot account words for payload of type {type(payload)!r}")


@dataclass(frozen=True)
class Message:
    """One message in flight: ``src → dst``, delivered next round."""

    src: int
    dst: int
    payload: Any
    tag: str = ""

    def words(self, point_words: int) -> int:
        return payload_words(self.payload, point_words)
