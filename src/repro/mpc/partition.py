"""Input partitioners.

The paper assumes "the input set V is initially partitioned into m
subsets V₁…V_m" with no distributional guarantees; the proofs are
worst-case over partitions.  We provide four strategies so experiments
can stress the algorithms:

* :func:`random_partition` — uniformly random assignment (the benign
  case typical of real ingestion pipelines);
* :func:`block_partition` — contiguous id blocks (data arrives sorted,
  a classic hostile case for coreset methods);
* :func:`skewed_partition` — geometrically decaying machine sizes
  (stragglers / heterogeneous shards);
* :func:`adversarial_partition` — co-locates whole ground-truth
  clusters on single machines, which maximally starves local GMM runs
  of global structure.

All partitioners guarantee every machine gets at least one point when
``n >= m`` and return a list of disjoint int64 id arrays covering
``0..n-1``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.exceptions import PartitionError


def _validated(parts: List[np.ndarray], n: int, m: int) -> List[np.ndarray]:
    if len(parts) != m:
        raise PartitionError(f"expected {m} parts, got {len(parts)}")
    concat = np.concatenate([p for p in parts]) if parts else np.array([], dtype=np.int64)
    if concat.size != n or np.unique(concat).size != n:
        raise PartitionError("parts must be a disjoint cover of all ids")
    if n >= m and any(p.size == 0 for p in parts):
        raise PartitionError("every machine must receive at least one point")
    return [np.sort(p).astype(np.int64) for p in parts]


def _rebalance_empty(parts: List[np.ndarray]) -> List[np.ndarray]:
    """Move single ids from the largest parts into empty ones."""
    parts = [p.copy() for p in parts]
    while any(p.size == 0 for p in parts):
        src = max(range(len(parts)), key=lambda i: parts[i].size)
        dst = next(i for i, p in enumerate(parts) if p.size == 0)
        if parts[src].size <= 1:
            break  # n < m: impossible to fill everything
        parts[dst] = parts[src][-1:]
        parts[src] = parts[src][:-1]
    return parts


def random_partition(
    n: int, m: int, rng: Optional[np.random.Generator] = None
) -> List[np.ndarray]:
    """Assign each id to a uniformly random machine."""
    rng = rng or np.random.default_rng(0)
    perm = rng.permutation(n)
    parts = [perm[i::m] for i in range(m)]
    return _validated(_rebalance_empty(parts), n, m)


def block_partition(
    n: int, m: int, rng: Optional[np.random.Generator] = None
) -> List[np.ndarray]:
    """Contiguous blocks of ids, sizes differing by at most one."""
    bounds = np.linspace(0, n, m + 1).astype(np.int64)
    parts = [np.arange(bounds[i], bounds[i + 1], dtype=np.int64) for i in range(m)]
    return _validated(_rebalance_empty(parts), n, m)


def skewed_partition(
    n: int,
    m: int,
    rng: Optional[np.random.Generator] = None,
    decay: float = 0.6,
) -> List[np.ndarray]:
    """Machine i receives a ~``decay^i`` share of a random permutation."""
    if not (0 < decay <= 1):
        raise PartitionError("decay must be in (0, 1]")
    rng = rng or np.random.default_rng(0)
    weights = decay ** np.arange(m, dtype=np.float64)
    weights /= weights.sum()
    sizes = np.maximum(1, np.floor(weights * n).astype(np.int64)) if n >= m else np.zeros(m, np.int64)
    # fix rounding so sizes sum to n
    while sizes.sum() > n:
        sizes[int(np.argmax(sizes))] -= 1
    while sizes.sum() < n:
        sizes[int(np.argmin(sizes))] += 1
    perm = rng.permutation(n)
    parts, off = [], 0
    for s in sizes:
        parts.append(perm[off : off + s])
        off += s
    return _validated(_rebalance_empty(parts), n, m)


def adversarial_partition(
    n: int,
    m: int,
    labels: np.ndarray,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Co-locate whole ground-truth clusters on single machines.

    ``labels[i]`` is the cluster of point ``i``; cluster ``c`` goes to
    machine ``c mod m``.  This starves per-machine GMM of any view of
    the other clusters — the hardest regime for coreset baselines.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size != n:
        raise PartitionError("labels must have length n")
    parts = [np.where(labels % m == i)[0].astype(np.int64) for i in range(m)]
    return _validated(_rebalance_empty(parts), n, m)


_REGISTRY: Dict[str, Callable] = {
    "random": random_partition,
    "block": block_partition,
    "skewed": skewed_partition,
}


def get_partitioner(name: str) -> Callable:
    """Look up a partitioner by name (``random``, ``block``, ``skewed``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PartitionError(
            f"unknown partitioner {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
