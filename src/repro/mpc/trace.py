"""Round-by-round message tracing for debugging distributed runs.

Attach a :class:`MessageTrace` to a cluster and every delivered message
is recorded as a :class:`TraceEvent` (round, src, dst, tag, words).
Traces answer the questions that matter when an MPC algorithm
misbehaves: *which step* moved the data, *who* talked to whom, and
*where* the communication budget went — broken down by the message tags
the algorithms already attach (``degree/sample``, ``mis/samples``, …).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mpc.cluster import MPCCluster


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message."""

    round_no: int
    src: int
    dst: int
    tag: str
    words: int


class MessageTrace:
    """Records every message a cluster delivers.

    Usage::

        trace = MessageTrace.attach(cluster)
        mpc_kcenter(cluster, k=8)
        print(trace.words_by_tag())

    Attaching wraps ``cluster.step``; call :meth:`detach` to restore it.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._cluster: Optional[MPCCluster] = None
        self._orig_step = None

    @classmethod
    def attach(cls, cluster: MPCCluster) -> "MessageTrace":
        trace = cls()
        trace._cluster = cluster
        trace._orig_step = cluster.step
        pw = cluster.metric.point_words()

        def traced_step():
            pending = list(cluster._outbox)
            inboxes = trace._orig_step()
            for msg in pending:
                trace.events.append(
                    TraceEvent(
                        round_no=cluster.round_no,
                        src=msg.src,
                        dst=msg.dst,
                        tag=msg.tag,
                        words=msg.words(pw),
                    )
                )
            return inboxes

        cluster.step = traced_step
        return trace

    def detach(self) -> None:
        """Restore the cluster's original ``step``."""
        if self._cluster is not None and self._orig_step is not None:
            self._cluster.step = self._orig_step
            self._cluster = None

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def words_by_tag(self) -> Dict[str, int]:
        """Total words moved per message tag, descending."""
        acc: Dict[str, int] = defaultdict(int)
        for e in self.events:
            acc[e.tag] += e.words
        return dict(sorted(acc.items(), key=lambda kv: -kv[1]))

    def words_by_round(self) -> Dict[int, int]:
        """Total words delivered per round."""
        acc: Dict[int, int] = defaultdict(int)
        for e in self.events:
            acc[e.round_no] += e.words
        return dict(sorted(acc.items()))

    def messages_between(self, src: int, dst: int) -> List[TraceEvent]:
        """All events on one directed machine pair."""
        return [e for e in self.events if e.src == src and e.dst == dst]

    def heaviest_events(self, limit: int = 10) -> List[TraceEvent]:
        """The largest individual messages."""
        return sorted(self.events, key=lambda e: -e.words)[:limit]

    def total_words(self) -> int:
        return sum(e.words for e in self.events)
