"""Round-by-round message tracing for debugging distributed runs.

Add a :class:`MessageTrace` to a cluster's observer hub and every
delivered message is recorded as a :class:`TraceEvent` (round, src, dst,
tag, words).  Traces answer the questions that matter when an MPC
algorithm misbehaves: *which step* moved the data, *who* talked to whom,
and *where* the communication budget went — broken down by the message
tags the algorithms already attach (``degree/sample``, ``mis/samples``,
…).

The trace is an ordinary :class:`~repro.obs.observer.Observer` riding
the native event hooks of :class:`~repro.mpc.cluster.MPCCluster`::

    trace = cluster.obs.add(MessageTrace())
    mpc_kcenter(cluster, k=8)
    print(trace.words_by_tag())
    cluster.obs.remove(trace)          # or trace.detach()
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.obs.events import MessageEvent
from repro.obs.observer import Observer

#: Backwards-compatible alias: trace events *are* the hub's message events.
TraceEvent = MessageEvent


class MessageTrace(Observer):
    """Records every message a cluster delivers.

    Usage::

        trace = cluster.obs.add(MessageTrace())
        mpc_kcenter(cluster, k=8)
        print(trace.words_by_tag())
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    # -- hook --------------------------------------------------------------------

    def on_message(self, event: MessageEvent) -> None:
        self.events.append(event)

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def words_by_tag(self) -> Dict[str, int]:
        """Total words moved per message tag, descending."""
        acc: Dict[str, int] = defaultdict(int)
        for e in self.events:
            acc[e.tag] += e.words
        return dict(sorted(acc.items(), key=lambda kv: -kv[1]))

    def words_by_round(self) -> Dict[int, int]:
        """Total words delivered per round."""
        acc: Dict[int, int] = defaultdict(int)
        for e in self.events:
            acc[e.round_no] += e.words
        return dict(sorted(acc.items()))

    def messages_between(self, src: int, dst: int) -> List[TraceEvent]:
        """All events on one directed machine pair."""
        return [e for e in self.events if e.src == src and e.dst == dst]

    def heaviest_events(self, limit: int = 10) -> List[TraceEvent]:
        """The largest individual messages."""
        return sorted(self.events, key=lambda e: -e.words)[:limit]

    def total_words(self) -> int:
        return sum(e.words for e in self.events)
