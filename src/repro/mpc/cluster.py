"""The MPC cluster: machines + synchronous rounds + accounting.

Usage pattern (driver style)::

    cluster = MPCCluster(metric, num_machines=8, seed=0)
    for mach in cluster.machines:          # local computation
        sample = mach.rng.random(...) ...
        cluster.send(mach.id, MPCCluster.CENTRAL, PointBatch(sample))
    inboxes = cluster.step()               # round barrier: deliver
    central_msgs = inboxes[MPCCluster.CENTRAL]

Every ``step()`` is one MPC round: queued messages are charged to
senders and receivers, limits (if any) are enforced, receivers learn the
points carried by :class:`~repro.mpc.message.PointBatch` payloads, and
the round counter advances.  Helper wrappers (:meth:`broadcast`,
:meth:`gather_to_central`, …) express the collective patterns the
paper's algorithms use.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.exceptions import MachineFault
from repro.faults import MACHINE_FAULT_RETRIES, FaultPlan
from repro.metric.base import Metric
from repro.mpc.accounting import ClusterStats, RoundStats
from repro.mpc.limits import Limits
from repro.mpc.executor import SerialExecutor
from repro.mpc.machine import Machine
from repro.mpc.message import Message, PointBatch
from repro.mpc.partition import random_partition
from repro.obs.events import FaultEvent
from repro.obs.logging import get_logger
from repro.obs.observer import ObserverHub

_log = get_logger("repro.mpc.cluster")


def _iter_point_batches(payload: Any):
    """Yield every PointBatch nested anywhere inside a payload."""
    if isinstance(payload, PointBatch):
        yield payload
    elif isinstance(payload, dict):
        for v in payload.values():
            yield from _iter_point_batches(v)
    elif isinstance(payload, (tuple, list)):
        for v in payload:
            yield from _iter_point_batches(v)


class MPCCluster:
    """A simulated MPC deployment over one metric space.

    Parameters
    ----------
    metric:
        The distance oracle over the ground set (its ``n`` is the input
        size).
    num_machines:
        ``m``; the paper assumes ``m = n^γ`` for some γ > 0.
    partition:
        Pre-computed list of id arrays (one per machine), or ``None``
        for a seeded random partition.
    seed:
        Master seed; machine RNG streams are spawned from it, so runs
        are reproducible bit-for-bit.
    strict:
        Enforce the known-point discipline (default on).
    limits:
        Optional hard memory/communication caps.
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or spec accepted by
        :meth:`~repro.faults.FaultPlan.from_spec`).  Its machine layer
        injects transient :class:`~repro.exceptions.MachineFault`\\ s
        into ``map_machines`` tasks, retried up to
        :data:`~repro.faults.MACHINE_FAULT_RETRIES` times; its executor
        layer is forwarded to the executor (when it supports
        ``set_fault_plan``).
    """

    #: Index of the central machine used by the paper's algorithms.
    CENTRAL = 0

    def __init__(
        self,
        metric: Metric,
        num_machines: int,
        partition: Optional[List[np.ndarray]] = None,
        seed: int = 0,
        strict: bool = True,
        limits: Optional[Limits] = None,
        executor=None,
        faults=None,
    ) -> None:
        if num_machines < 1:
            raise ValueError("need at least one machine")
        self.metric = metric
        self.m = int(num_machines)
        self.seed = int(seed)
        self.strict = strict
        self.limits = limits
        #: resolved fault plan (None = no injection); see repro.faults
        self.faults: Optional[FaultPlan] = FaultPlan.from_spec(faults)
        #: map_machines dispatch counter (machine-fault coordinate)
        self._dispatch_no = 0
        #: executes per-machine local work; see repro.mpc.executor
        self.executor = executor or SerialExecutor()
        bind = getattr(self.executor, "bind", None)
        if bind is not None:
            bind(self)
        if self.faults is not None:
            set_plan = getattr(self.executor, "set_fault_plan", None)
            if set_plan is not None:
                set_plan(self.faults)

        master = np.random.default_rng(seed)
        streams = master.spawn(self.m + 1)
        #: cluster-level RNG (used by drivers for shared coin flips)
        self.rng = streams[self.m]

        if partition is None:
            partition = random_partition(metric.n, self.m, np.random.default_rng(seed ^ 0x9E3779B9))
        if len(partition) != self.m:
            raise ValueError("partition size must equal num_machines")

        self.machines: List[Machine] = [
            Machine(i, metric, partition[i], streams[i], strict=strict)
            for i in range(self.m)
        ]
        self.stats = ClusterStats(num_machines=self.m)
        #: observability hub: event hooks + phase spans (see repro.obs)
        self.obs = ObserverHub(self)
        self._outbox: List[Message] = []
        self.round_no = 0
        self._check_memory()

    # -- introspection -----------------------------------------------------------

    @property
    def n(self) -> int:
        """Ground-set size."""
        return self.metric.n

    @property
    def central(self) -> Machine:
        """The central machine (machine 0)."""
        return self.machines[self.CENTRAL]

    def partition_sizes(self) -> np.ndarray:
        return np.array([mach.local_ids.size for mach in self.machines])

    def map_machines(self, fn) -> list:
        """Evaluate ``fn(machine)`` for every machine, possibly in
        parallel (see the ``executor`` constructor argument).  Results
        come back ordered by machine id.  ``fn`` must touch only its
        machine's state — exactly the MPC local-computation contract.
        Backends that need machine-aware dispatch (the process backend
        synchronises RNG streams and oracle counters) provide
        ``map_machines``; the others get the plain indexed form.

        When a fault plan with an active machine layer is installed,
        tasks selected by the plan raise a transient
        :class:`~repro.exceptions.MachineFault` *at entry* — before the
        machine touches its RNG stream or the oracle — and are retried
        in place up to :data:`~repro.faults.MACHINE_FAULT_RETRIES`
        times, so recovered runs stay bit-identical to undisturbed
        ones.  A fault that outlives the budget propagates."""
        task = fn
        if self.faults is not None and self.faults.machine_active:
            self._dispatch_no += 1
            task = self._fault_wrapped(fn, self.round_no, self._dispatch_no)
        mapper = getattr(self.executor, "map_machines", None)
        if mapper is not None:
            return mapper(task, self.machines, metric=self.metric)
        return self.executor.map_indexed(lambda i: task(self.machines[i]), self.m)

    def _fault_wrapped(self, fn, round_no: int, dispatch_no: int):
        """Wrap a map_machines task with machine-fault injection + retry.

        The plan is a pure function, so the driver can emit the full
        injection/recovery record here — even when the task itself runs
        inside a forked worker the driver never hears from again — and
        the retry loop can live *inside* the task, where it works on
        every backend.
        """
        plan = self.faults
        for mach in self.machines:
            n_faults = plan.machine_faults(round_no, dispatch_no, mach.id)
            if n_faults == 0:
                continue
            _log.info(
                "machine fault injected",
                extra={"machine": mach.id, "round_no": round_no,
                       "faults": n_faults,
                       "recovered": n_faults <= MACHINE_FAULT_RETRIES},
            )
            for attempt in range(min(n_faults, MACHINE_FAULT_RETRIES + 1)):
                self.obs.emit_fault(FaultEvent(
                    layer="machine", kind="machine_fault", injected=True,
                    round_no=round_no, target=f"machine {mach.id}",
                    attempt=attempt, detail=f"dispatch {dispatch_no}",
                ))
            if n_faults <= MACHINE_FAULT_RETRIES:
                self.obs.emit_fault(FaultEvent(
                    layer="machine", kind="machine_retry", injected=False,
                    round_no=round_no, target=f"machine {mach.id}",
                    attempt=n_faults,
                    detail=f"recovered after {n_faults} retr"
                           f"{'y' if n_faults == 1 else 'ies'}",
                ))

        def task(mach):
            n_faults = plan.machine_faults(round_no, dispatch_no, mach.id)
            for attempt in range(MACHINE_FAULT_RETRIES + 1):
                try:
                    if attempt < n_faults:
                        # injected at entry: no machine state touched yet,
                        # so the retry below is trivially bit-identical
                        raise MachineFault(mach.id, round_no, attempt)
                    return fn(mach)
                except MachineFault:
                    if attempt >= MACHINE_FAULT_RETRIES:
                        raise
            raise AssertionError("unreachable")  # pragma: no cover

        return task

    # -- messaging ---------------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any, tag: str = "") -> None:
        """Queue a message for delivery at the next :meth:`step`.

        In strict mode a :class:`PointBatch` may only carry points the
        *sender* knows.
        """
        if not (0 <= src < self.m and 0 <= dst < self.m):
            raise ValueError("machine id out of range")
        if self.strict:
            for batch in _iter_point_batches(payload):
                self.machines[src].require_known(batch.ids)
        msg = Message(src=src, dst=dst, payload=payload, tag=tag)
        self._outbox.append(msg)
        self.obs.emit_send(msg)

    def broadcast(self, src: int, payload: Any, tag: str = "", include_self: bool = False) -> None:
        """Queue the same payload from ``src`` to every (other) machine."""
        for dst in range(self.m):
            if dst == src and not include_self:
                continue
            self.send(src, dst, payload, tag=tag)

    def step(self) -> Dict[int, List[Message]]:
        """Round barrier: deliver all queued messages.

        Returns the inboxes, ``{machine_id: [messages...]}`` (every
        machine id present, possibly with an empty list).  Charges each
        message to sender and receiver, enforces limits, and teaches
        receivers the points in PointBatch payloads.
        """
        self.round_no += 1
        self.obs.emit_round_start(self.round_no)
        sent = np.zeros(self.m, dtype=np.int64)
        received = np.zeros(self.m, dtype=np.int64)
        inboxes: Dict[int, List[Message]] = {i: [] for i in range(self.m)}
        pw = self.metric.point_words()

        for msg in self._outbox:
            w = msg.words(pw)
            sent[msg.src] += w
            received[msg.dst] += w
            inboxes[msg.dst].append(msg)
            for batch in _iter_point_batches(msg.payload):
                self.machines[msg.dst].learn(batch.ids)
            self.obs.emit_message(self.round_no, msg.src, msg.dst, msg.tag, w)

        if self.limits is not None:
            for i in range(self.m):
                self.limits.check_comm(i, self.round_no, int(sent[i] + received[i]))

        round_stats = RoundStats(
            round_no=self.round_no,
            sent=sent,
            received=received,
            messages=len(self._outbox),
        )
        self.stats.record_round(round_stats)
        self._outbox = []
        self._check_memory()
        self.obs.emit_round_end(round_stats)
        return inboxes

    def _check_memory(self) -> None:
        peak = max(mach.known_count for mach in self.machines)
        self.stats.peak_known_points = max(self.stats.peak_known_points, peak)
        if self.limits is not None:
            for mach in self.machines:
                self.limits.check_memory(mach.id, mach.known_words())

    # -- collective helpers ---------------------------------------------------------

    def gather_to_central(self, payloads: Dict[int, Any], tag: str = "") -> List[Message]:
        """One round: each ``src -> payload`` message goes to the central
        machine; returns the central inbox sorted by source."""
        for src, payload in payloads.items():
            self.send(src, self.CENTRAL, payload, tag=tag)
        inbox = self.step()[self.CENTRAL]
        return sorted(inbox, key=lambda msg: msg.src)

    def broadcast_points_from_central(self, ids: Iterable[int], columns: dict | None = None, tag: str = "") -> None:
        """One round: central ships a PointBatch to every other machine."""
        self.broadcast(self.CENTRAL, PointBatch(ids, columns), tag=tag)
        self.step()

    def all_to_all_points(self, ids_by_src: Dict[int, np.ndarray], tag: str = "") -> None:
        """One round: every machine ships its batch to every other machine.

        After this, every machine knows the union of all batches.
        """
        for src, ids in ids_by_src.items():
            for dst in range(self.m):
                if dst != src:
                    self.send(src, dst, PointBatch(ids), tag=tag)
        self.step()

    def central_knows(self, ids: Iterable[int]) -> bool:
        return self.central.knows(ids)
