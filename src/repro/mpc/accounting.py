"""Communication and memory accounting for the MPC simulator.

Each completed round produces a :class:`RoundStats` with the words sent
and received per machine.  :class:`ClusterStats` aggregates them into the
quantities the paper's theorems bound:

* ``max_machine_words`` — the worst per-machine, per-round
  sent+received load (the model's per-round constraint);
* ``max_machine_total`` — worst cumulative communication by one machine
  (the Õ(mk) quantity of Theorems 9/15/17/18);
* ``total_words`` — network-wide traffic;
* ``rounds`` — number of synchronous rounds executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass
class RoundStats:
    """Per-machine words moved in one round."""

    round_no: int
    sent: np.ndarray
    received: np.ndarray
    messages: int

    @property
    def max_load(self) -> int:
        """Worst sent+received load on any single machine this round."""
        if self.sent.size == 0:
            return 0
        return int((self.sent + self.received).max())

    @property
    def total(self) -> int:
        """Total words delivered this round (counted once, at senders)."""
        return int(self.sent.sum())


@dataclass
class ClusterStats:
    """Aggregated statistics for a full simulated execution."""

    num_machines: int
    rounds_log: List[RoundStats] = field(default_factory=list)
    peak_known_points: int = 0

    def record_round(self, stats: RoundStats) -> None:
        self.rounds_log.append(stats)

    @property
    def rounds(self) -> int:
        """Number of communication rounds executed."""
        return len(self.rounds_log)

    @property
    def total_words(self) -> int:
        """Total words that crossed the network."""
        return sum(r.total for r in self.rounds_log)

    @property
    def total_messages(self) -> int:
        """Total message envelopes delivered across the run."""
        return sum(r.messages for r in self.rounds_log)

    @property
    def max_machine_words(self) -> int:
        """Worst single-round sent+received load on any machine."""
        return max((r.max_load for r in self.rounds_log), default=0)

    @property
    def max_machine_total(self) -> int:
        """Worst cumulative sent+received words over any machine."""
        if not self.rounds_log:
            return 0
        acc = np.zeros(self.num_machines, dtype=np.int64)
        for r in self.rounds_log:
            acc += r.sent + r.received
        return int(acc.max())

    def per_machine_totals(self) -> np.ndarray:
        """Cumulative sent+received words per machine."""
        acc = np.zeros(self.num_machines, dtype=np.int64)
        for r in self.rounds_log:
            acc += r.sent + r.received
        return acc

    def summary(self) -> dict:
        """Plain-dict summary for reports and benchmarks."""
        return {
            "machines": self.num_machines,
            "rounds": self.rounds,
            "total_words": self.total_words,
            "max_machine_words_per_round": self.max_machine_words,
            "max_machine_total_words": self.max_machine_total,
            "peak_known_points": self.peak_known_points,
        }
