"""Shared-memory backing for point matrices.

:class:`~repro.mpc.executor.ProcessExecutor` workers are forked from
the driver, so they inherit the point matrix by copy-on-write already —
but CPython's refcount writes and numpy temporaries can silently
duplicate pages over a long run.  Migrating the coordinate array into a
:mod:`multiprocessing.shared_memory` segment pins the one physical copy
for the driver and every worker, and is the piece that would let a
spawn-based pool (platforms without ``fork``) read the points without
pickling them.

Lifecycle: :func:`share_metric_points` rebinds the metric's
:class:`~repro.metric.points.PointSet` buffer to a shared segment and
returns a :class:`SharedArray` handle.  ``release()`` unlinks the
segment name but keeps the local mapping alive, so the metric stays
usable after the executor shuts down; the final ``close`` happens at
interpreter exit.
"""

from __future__ import annotations

import atexit
from typing import List, Optional

import numpy as np

from repro.obs.logging import get_logger

_log = get_logger("repro.mpc.shm")

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

#: arrays smaller than this stay private — sharing overhead isn't worth it
MIN_SHARED_BYTES = 1 << 20

_live: List["SharedArray"] = []
#: released handles, kept referenced forever: SharedMemory.__del__ would
#: close() the mapping on GC and pull the buffer out from under any
#: numpy view still pointing at it (one handle per executor bind, so
#: this stays tiny)
_retired: List["SharedArray"] = []


class SharedArray:
    """A numpy array whose buffer lives in a shared-memory segment."""

    def __init__(self, source: np.ndarray) -> None:
        self.shm = shared_memory.SharedMemory(create=True, size=source.nbytes)
        view = np.ndarray(source.shape, dtype=source.dtype, buffer=self.shm.buf)
        view[:] = source
        view.setflags(write=False)
        self.array = view
        self._unlinked = False
        _live.append(self)

    @property
    def name(self) -> str:
        return self.shm.name

    def release(self) -> None:
        """Unlink the segment name (idempotent).

        The local mapping stays valid — views handed out earlier keep
        working — but no new process can attach, and the memory is
        returned to the OS once the last mapping closes.
        """
        if not self._unlinked:
            self._unlinked = True
            try:
                self.shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            if self in _live:
                _live.remove(self)
            _retired.append(self)

    def _close(self) -> None:
        """Drop the mapping too — only safe when no view is in use."""
        self.release()
        try:
            self.shm.close()
        except (BufferError, OSError):  # pragma: no cover - views still alive
            return
        if self in _retired:
            _retired.remove(self)


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter teardown
    for handle in list(_live):
        handle.release()


def _unwrap(metric):
    """Walk oracle wrappers (``.inner``) down to the base metric."""
    seen = set()
    while metric is not None and id(metric) not in seen:
        seen.add(id(metric))
        yield metric
        metric = getattr(metric, "inner", None)


def share_metric_points(metric, min_bytes: int = MIN_SHARED_BYTES) -> Optional[SharedArray]:
    """Move the metric's coordinate matrix into shared memory.

    Returns the :class:`SharedArray` handle, or ``None`` when the metric
    carries no rebindable point matrix (matrix/graph/callable oracles),
    the array is too small to bother, or shared memory is unavailable.
    The rebinding is transparent: the ``PointSet`` keeps its identity
    and read-only contract, only its buffer moves.
    """
    if shared_memory is None:  # pragma: no cover
        return None
    for layer in _unwrap(metric):
        points = getattr(layer, "points", None)
        data = getattr(points, "_data", None)
        if isinstance(data, np.ndarray):
            if data.nbytes < min_bytes:
                _log.debug(
                    "point matrix stays private",
                    extra={"nbytes": int(data.nbytes), "min_bytes": min_bytes},
                )
                return None
            try:
                handle = SharedArray(data)
            except (OSError, ValueError):  # pragma: no cover - no /dev/shm
                _log.warning(
                    "shared memory unavailable; point matrix stays private",
                    extra={"nbytes": int(data.nbytes)},
                )
                return None
            points._data = handle.array
            _log.debug(
                "point matrix migrated to shared memory",
                extra={"segment": handle.name, "nbytes": int(data.nbytes)},
            )
            return handle
    return None
