"""Remote multi-host execution: worker agents + a lease-based executor.

:class:`RemoteExecutor` is the fourth :class:`~repro.mpc.executor.ExecutionBackend`:
it ships per-machine work over TCP to lightweight worker agents
(:class:`WorkerAgent`, started with ``repro worker --listen HOST:PORT``)
instead of forking local processes.  Robustness — not the transport —
is the design center:

* **Framed protocol.**  Every message is one length-prefixed frame
  (8-byte big-endian length + pickled payload).  A truncated frame, a
  closed socket, or an oversized header is a :class:`ProtocolError`,
  never a hang or a partial read.
* **Dataset cache.**  The point matrix is shipped **once per dataset
  fingerprint** per worker (the remote analogue of
  :mod:`repro.mpc.shm`); chunk payloads reference it by fingerprint
  through pickle persistent ids.  A freshly restarted worker answers
  ``need_dataset`` and the driver re-ships transparently.
* **Leases and heartbeats.**  A dispatched chunk holds a lease of
  :attr:`RemoteExecutor.lease_s`; the executing worker heartbeats while
  it computes, each beat renewing the lease up to a hard per-chunk
  deadline.  A worker that stops beating forfeits the chunk.
* **Re-dispatch to survivors.**  Chunks from dead, unresponsive, or
  corrupt-responding workers are re-dispatched to surviving workers
  with exponential backoff and deterministic jitter, bounded by
  ``chunk_retries`` — reasons aggregate in ``degradations`` /
  ``recovery_stats()`` exactly like
  :class:`~repro.mpc.executor.ProcessExecutor`.  A result that arrives
  *after* its lease was forfeited is counted, not applied:
  first-writer-wins.
* **Graceful degradation.**  When the whole pool is lost mid-run the
  batch falls to the local process backend, and from there to a serial
  driver re-run — the same ladder, one rung higher.
* **Bit-identity.**  Workers replay nothing into the driver; they
  return ``(value, rng_state, oracle_deltas)`` per machine and the
  driver replays RNG states and CountingOracle deltas exactly as the
  process backend does, so a remote run — faulted or not — is
  bit-identical to a serial one, ledger included.

Closures are shipped by value (code object + cells + referenced
globals), so both ends must run the same Python ``major.minor`` —
verified at ping time, mismatched workers are refused with a clear
reason rather than a marshal crash mid-run.
"""

from __future__ import annotations

import hashlib
import importlib
import io
import marshal
import os
import pickle
import socket
import struct
import sys
import threading
import time
import traceback
import types
import weakref
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.mpc.executor import ProcessExecutor, _counting_layers, workers_from_env
from repro.mpc.shm import _unwrap
from repro.obs.events import ExecSpanRecord, FaultEvent
from repro.obs.logging import get_logger
from repro.obs.tracing import TraceContext

T = TypeVar("T")

_log = get_logger("repro.mpc.remote")

#: environment variable listing default remote worker addresses
REMOTE_WORKERS_ENV_VAR = "REPRO_REMOTE_WORKERS"

#: sanity cap on a single frame (a corrupted length header must not
#: allocate gigabytes before failing)
MAX_FRAME_BYTES = 1 << 31

_HEADER = struct.Struct("!Q")


class ProtocolError(Exception):
    """A frame could not be read or written whole: truncated stream,
    closed connection, or an implausible length header."""


# -- framing ------------------------------------------------------------------


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    buf = bytearray()
    while len(buf) < nbytes:
        piece = sock.recv(min(1 << 16, nbytes - len(buf)))
        if not piece:
            raise ProtocolError(
                f"connection closed mid-frame ({len(buf)}/{nbytes} bytes)"
            )
        buf += piece
    return bytes(buf)


def send_frame(sock: socket.socket, blob: bytes) -> None:
    """Write one length-prefixed frame."""
    sock.sendall(_HEADER.pack(len(blob)) + blob)


def recv_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame whole (or raise
    :class:`ProtocolError`); ``socket.timeout`` propagates so callers
    can implement leases."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    return _recv_exact(sock, length)


def send_msg(sock: socket.socket, payload: dict) -> None:
    send_frame(sock, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


def recv_msg(sock: socket.socket) -> dict:
    blob = recv_frame(sock)
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"expected a dict frame, got {type(payload).__name__}")
    return payload


def parse_worker_addresses(spec, *, allow_zero_port: bool = False) -> List[Tuple[str, int]]:
    """``'host:port,host:port'`` (or a list of such / ``(host, port)``
    pairs) → a list of ``(host, port)`` tuples, order preserved.

    ``allow_zero_port`` admits port 0 — meaningful only for a *listen*
    address (the OS picks an ephemeral port), never for dialing out.
    """
    if spec is None:
        return []
    items: list = []
    if isinstance(spec, str):
        items = [part for part in spec.split(",") if part.strip()]
    else:
        items = list(spec)
    out: List[Tuple[str, int]] = []
    for item in items:
        if isinstance(item, tuple):
            host, port = item
        else:
            text = str(item).strip()
            host, sep, port = text.rpartition(":")
            if not sep or not host:
                raise ValueError(f"bad worker address {item!r}; expected HOST:PORT")
        try:
            port = int(port)
        except ValueError:
            raise ValueError(f"bad worker port in {item!r}") from None
        if not (0 if allow_zero_port else 1) <= port < 65536:
            raise ValueError(f"worker port out of range in {item!r}")
        out.append((str(host), port))
    return out


def workers_from_remote_env() -> List[Tuple[str, int]]:
    """Addresses from :data:`REMOTE_WORKERS_ENV_VAR` (empty when unset)."""
    return parse_worker_addresses(os.environ.get(REMOTE_WORKERS_ENV_VAR, ""))


# -- task shipping ------------------------------------------------------------
#
# map_machines tasks are closures over numpy arrays and module-level
# helpers — exactly what stdlib pickle refuses.  The pair of pickler
# subclasses below ships such functions *by value*: the marshalled code
# object, defaults, closure-cell contents, and the referenced globals
# (modules go by name, module-level functions by reference).  The point
# matrix additionally travels as a persistent id so a chunk payload
# never embeds the dataset — the worker resolves the fingerprint from
# its cache and answers ``need_dataset`` on a miss.


class _DatasetMiss(Exception):
    def __init__(self, fingerprint: str) -> None:
        super().__init__(f"dataset {fingerprint} not cached on this worker")
        self.fingerprint = fingerprint


class _EmptyCell:
    """Sentinel for an unassigned closure cell."""


_EMPTY_CELL = _EmptyCell()


def _code_names(code: types.CodeType) -> set:
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _code_names(const)
    return names


def _shipped_by_value(fn: types.FunctionType) -> bool:
    """True when ``fn`` cannot be pickled by reference (lambdas,
    nested functions, anything not importable under its qualname)."""
    if fn.__name__ == "<lambda>" or "<locals>" in fn.__qualname__:
        return True
    module = sys.modules.get(fn.__module__)
    if module is None:
        return True
    target = module
    for part in fn.__qualname__.split("."):
        target = getattr(target, part, None)
        if target is None:
            return True
    return target is not fn


def _rebuild_function(code_bytes, name, defaults, kwdefaults, cells, glb, module):
    import builtins

    code = marshal.loads(code_bytes)
    namespace = dict(glb)
    namespace.setdefault("__builtins__", builtins)
    namespace.setdefault("__name__", module)
    closure = tuple(
        types.CellType() if isinstance(v, _EmptyCell) else types.CellType(v)
        for v in cells
    )
    fn = types.FunctionType(code, namespace, name, defaults, closure)
    fn.__kwdefaults__ = kwdefaults
    return fn


def _reduce_function(fn: types.FunctionType):
    cells = []
    for cell in fn.__closure__ or ():
        try:
            cells.append(cell.cell_contents)
        except ValueError:  # pragma: no cover - unassigned cell
            cells.append(_EMPTY_CELL)
    glb = {
        name: fn.__globals__[name]
        for name in sorted(_code_names(fn.__code__))
        if name in fn.__globals__ and fn.__globals__[name] is not fn
    }
    return (
        _rebuild_function,
        (
            marshal.dumps(fn.__code__),
            fn.__name__,
            fn.__defaults__,
            fn.__kwdefaults__,
            tuple(cells),
            glb,
            fn.__module__,
        ),
    )


class _TaskPickler(pickle.Pickler):
    def __init__(self, buf, dataset: Optional[Tuple[str, np.ndarray]] = None) -> None:
        super().__init__(buf, protocol=pickle.HIGHEST_PROTOCOL)
        self._dataset = dataset

    def persistent_id(self, obj):
        if self._dataset is not None and obj is self._dataset[1]:
            return ("repro-dataset", self._dataset[0])
        return None

    def reducer_override(self, obj):
        if isinstance(obj, types.ModuleType):
            return (importlib.import_module, (obj.__name__,))
        if isinstance(obj, types.FunctionType) and _shipped_by_value(obj):
            return _reduce_function(obj)
        return NotImplemented


class _TaskUnpickler(pickle.Unpickler):
    def __init__(self, buf, datasets: dict) -> None:
        super().__init__(buf)
        self._datasets = datasets

    def persistent_load(self, pid):
        kind, fingerprint = pid
        if kind != "repro-dataset":  # pragma: no cover - protocol guard
            raise ProtocolError(f"unknown persistent id {pid!r}")
        try:
            return self._datasets[fingerprint]
        except KeyError:
            raise _DatasetMiss(fingerprint) from None


def dumps_task(payload, dataset: Optional[Tuple[str, np.ndarray]] = None) -> bytes:
    """Pickle a task payload, shipping closures by value and the point
    matrix (when given) as a fingerprint reference."""
    buf = io.BytesIO()
    _TaskPickler(buf, dataset=dataset).dump(payload)
    return buf.getvalue()


def loads_task(blob: bytes, datasets: dict):
    """Inverse of :func:`dumps_task`; raises :class:`_DatasetMiss` when a
    referenced fingerprint is not in ``datasets``."""
    return _TaskUnpickler(io.BytesIO(blob), datasets).load()


def find_points_array(metric) -> Optional[np.ndarray]:
    """The metric's raw coordinate matrix, if it has one (same walk as
    :func:`repro.mpc.shm.share_metric_points`)."""
    for layer in _unwrap(metric):
        data = getattr(getattr(layer, "points", None), "_data", None)
        if isinstance(data, np.ndarray):
            return data
    return None


def dataset_fingerprint(array: np.ndarray) -> str:
    """Content fingerprint of a point matrix (shape + dtype + bytes)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(repr((array.shape, str(array.dtype))).encode())
    h.update(np.ascontiguousarray(array).tobytes())
    return h.hexdigest()


# -- the worker agent ---------------------------------------------------------


class WorkerAgent:
    """One remote worker: accepts framed requests, executes chunks.

    Usable in-process (tests, the docs quickstart) via :meth:`start` /
    :meth:`stop`, or as a dedicated process via ``repro worker --listen
    HOST:PORT`` (:meth:`serve_forever`).  The local slot count defaults
    to ``REPRO_WORKERS`` (see
    :func:`~repro.mpc.executor.workers_from_env`), else the CPU count;
    slots bound how many chunks execute concurrently on this agent.

    Request vocabulary (one request per connection)::

        {"op": "ping"}                          -> {"ok", "pid", "slots", "python", "datasets"}
        {"op": "put_dataset", fingerprint,
         shape, dtype, blob}                    -> {"ok", "cached"}
        {"op": "run", mode, blob, batch,
         worker, attempt, chunk, traceparent,
         parent_span, inject, delay_s,
         heartbeat_s}                           -> {"hb": n}* then
                                                   {"ok": True, "blob"} |
                                                   {"ok": False, "fatal"} |
                                                   {"ok": False, "need_dataset"}
        {"op": "shutdown"}                      -> {"ok": True}

    While a chunk runs, the handler emits ``{"hb": n}`` frames every
    ``heartbeat_s`` seconds; each one renews the driver's lease.
    Injected faults (decided by the driver's seeded
    :class:`~repro.faults.FaultPlan`, enacted here) arrive as
    ``inject``: ``"drop"`` closes the connection without a reply,
    ``"kill"`` terminates the agent (``os._exit`` for a dedicated
    process, a permanent stop for an in-process agent), ``"corrupt"``
    replies with an undecodable blob, and ``"delay"`` sleeps
    ``delay_s`` before computing (heartbeats keep the lease alive).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        slots: Optional[int] = None,
        allow_exit: bool = False,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.slots = int(slots or workers_from_env() or (os.cpu_count() or 1))
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        #: ``True`` for dedicated-process agents: an injected kill may
        #: ``os._exit``.  In-process agents simulate death by refusing
        #: all further connections instead.
        self.allow_exit = allow_exit
        self._datasets: dict[str, np.ndarray] = {}
        self._slots_sem = threading.BoundedSemaphore(self.slots)
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    # -- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> str:
        """``host:port`` once started."""
        return f"{self.host}:{self.port}"

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and accept in a background thread; returns the
        bound ``(host, port)`` (the OS picks the port when 0)."""
        if self._sock is not None:
            return (self.host, self.port)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(16)
        self.host, self.port = sock.getsockname()[:2]
        self._sock = sock
        self._stopped.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"repro-worker-{self.port}", daemon=True
        )
        self._accept_thread.start()
        _log.info(
            "worker agent listening",
            extra={"address": self.address, "slots": self.slots, "pid": os.getpid()},
        )
        return (self.host, self.port)

    def serve_forever(self) -> None:
        """Start and block until :meth:`stop` (the CLI entry point)."""
        self.start()
        self._stopped.wait()

    def stop(self) -> None:
        """Stop accepting and release the listening socket (idempotent).
        The dataset cache is dropped — a restarted agent must be
        re-shipped its datasets, which is exactly the cache-miss path
        the driver recovers from."""
        self._stopped.set()
        sock, self._sock = self._sock, None
        thread, self._accept_thread = self._accept_thread, None
        if sock is not None:
            # shutdown() wakes a thread blocked in accept(); close()
            # alone leaves it holding a kernel reference to the listen
            # socket, so the port would stay bound and a restarted agent
            # on the same address could never come up
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0)
        self._datasets.clear()

    def _die(self) -> None:
        """Enact an injected kill: the whole agent goes away."""
        if self.allow_exit:  # pragma: no cover - exercised in CI agents
            os._exit(1)
        self.stop()

    # -- serving --------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            sock = self._sock
            if sock is None:
                return
            try:
                conn, _addr = sock.accept()
            except OSError:
                return  # listening socket closed by stop()
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                try:
                    request = recv_msg(conn)
                except ProtocolError as exc:
                    # truncated/garbage frame: drop the connection; the
                    # driver sees a closed socket and treats the chunk
                    # as lost
                    _log.warning(
                        "worker dropped a malformed request",
                        extra={"address": self.address, "reason": str(exc)},
                    )
                    return
                self._handle(conn, request)
        except (OSError, ProtocolError):  # peer went away mid-reply
            pass

    def _handle(self, conn: socket.socket, request: dict) -> None:
        op = request.get("op")
        if op == "ping":
            send_msg(conn, {
                "ok": True,
                "pid": os.getpid(),
                "slots": self.slots,
                "python": tuple(sys.version_info[:2]),
                "datasets": sorted(self._datasets),
            })
        elif op == "put_dataset":
            fingerprint = str(request["fingerprint"])
            cached = fingerprint in self._datasets
            if not cached:
                array = np.frombuffer(
                    request["blob"], dtype=np.dtype(request["dtype"])
                ).reshape(tuple(request["shape"]))
                array.setflags(write=False)
                self._datasets[fingerprint] = array
                _log.info(
                    "dataset cached",
                    extra={"address": self.address, "fingerprint": fingerprint,
                           "nbytes": int(array.nbytes)},
                )
            send_msg(conn, {"ok": True, "cached": cached})
        elif op == "run":
            self._handle_run(conn, request)
        elif op == "shutdown":
            send_msg(conn, {"ok": True})
            self.stop()
        else:
            send_msg(conn, {"ok": False, "fatal": f"unknown op {op!r}"})

    def _handle_run(self, conn: socket.socket, request: dict) -> None:
        inject = request.get("inject")
        if inject == "drop":
            return  # close without a reply: the driver's read fails
        if inject == "kill":
            self._die()
            return

        heartbeat_s = float(request.get("heartbeat_s", 0.2))
        reply: dict = {}
        done = threading.Event()

        def work() -> None:
            try:
                if inject == "delay":
                    time.sleep(float(request.get("delay_s", 0.0)))
                reply.update(self._run_chunk(request))
            finally:
                done.set()

        thread = threading.Thread(target=work, daemon=True)
        thread.start()
        beats = 0
        while not done.wait(heartbeat_s):
            beats += 1
            send_msg(conn, {"hb": beats})  # OSError → peer gone → unwind
        if inject == "corrupt":
            send_msg(conn, {"ok": True, "blob": b"\xde\xad\xbe\xef"})
            return
        send_msg(conn, reply)

    def _run_chunk(self, request: dict) -> dict:
        with self._slots_sem:
            try:
                payload = loads_task(request["blob"], self._datasets)
            except _DatasetMiss as miss:
                return {"ok": False, "need_dataset": miss.fingerprint}
            except Exception:
                return {"ok": False, "fatal": traceback.format_exc()}
            t_start = time.perf_counter()
            try:
                if request["mode"] == "machines":
                    fn, machines = payload
                    counting = _counting_layers(machines[0].metric) if machines else []
                    values = []
                    for mach in machines:
                        before = [(c.calls, c.evaluations) for c in counting]
                        value = fn(mach)
                        deltas = [
                            (c.calls - b_calls, c.evaluations - b_evals)
                            for c, (b_calls, b_evals) in zip(counting, before)
                        ]
                        values.append((value, mach.rng.bit_generator.state, deltas))
                else:
                    fn, indices = payload
                    values = [fn(i) for i in indices]
            except BaseException:
                return {"ok": False, "fatal": traceback.format_exc()}
            span = {
                "name": "remote/chunk",
                "worker": int(request["worker"]),
                "batch": int(request["batch"]),
                "attempt": int(request["attempt"]),
                "chunk_size": len(request["chunk"]),
                "first_index": int(request["chunk"][0]) if request["chunk"] else -1,
                "os_pid": os.getpid(),
                "start_time": t_start,
                "end_time": time.perf_counter(),
            }
            ctx = TraceContext.from_traceparent(request.get("traceparent"))
            if ctx is not None:
                span["trace_id"] = ctx.trace_id
                span["span_id"] = ctx.span_id
                span["parent_span_id"] = request.get("parent_span")
            return {
                "ok": True,
                "blob": pickle.dumps((values, span), protocol=pickle.HIGHEST_PROTOCOL),
            }


# -- the driver side ----------------------------------------------------------


class _RemoteWorkerState:
    """Driver-side record of one worker agent."""

    __slots__ = ("addr", "alive", "reason", "datasets", "dispatched", "lost")

    def __init__(self, addr: Tuple[str, int]) -> None:
        self.addr = addr
        self.alive = True
        self.reason = ""
        self.datasets: set = set()
        self.dispatched = 0
        self.lost = 0

    @property
    def label(self) -> str:
        return f"{self.addr[0]}:{self.addr[1]}"

    def mark_dead(self, reason: str) -> None:
        self.alive = False
        self.reason = reason

    def status(self) -> dict:
        return {
            "alive": self.alive,
            "reason": self.reason,
            "dispatched": self.dispatched,
            "lost": self.lost,
        }


class _PoolFailure(Exception):
    """The remote pool cannot finish the batch: every worker is dead,
    the retry budget is exhausted, or the task cannot be shipped.  The
    message aggregates every failed chunk's reason."""


class RemoteExecutor:
    """Dispatch per-machine work to remote :class:`WorkerAgent`\\ s.

    Parameters
    ----------
    workers:
        Worker addresses — a ``'host:port,host:port'`` string or a list
        of ``'host:port'`` / ``(host, port)`` items.  Defaults to
        :data:`REMOTE_WORKERS_ENV_VAR` (``REPRO_REMOTE_WORKERS``).
    max_workers:
        Optional cap on how many of the addresses are used.
    faults:
        Optional :class:`~repro.faults.FaultPlan`; its remote layer
        (connection drop / worker kill / response corruption / slow
        worker) is decided in the driver — so observers see every
        injection — and enacted by the agents.
    chunk_retries:
        Times a lost chunk is re-dispatched (to a surviving worker)
        before the batch degrades to the local ladder.
    lease_s:
        Lease renewed by each worker heartbeat; a silent worker
        forfeits its chunk after this long.
    chunk_timeout_s:
        Hard per-chunk deadline — heartbeats cannot extend a chunk
        beyond this.
    connect_timeout_s:
        TCP connect timeout; a refused/unreachable worker is marked
        dead immediately.
    backoff_s / max_backoff_s:
        Exponential backoff between re-dispatch waves, with
        deterministic ±25% jitter (seeded by the batch coordinates, so
        chaos runs replay byte-identically).

    The degradation ladder (each rung records its reason in
    :attr:`degradations` and emits a recovery
    :class:`~repro.obs.events.FaultEvent`):

    1. lost chunks re-dispatch to surviving workers (bounded);
    2. a batch the pool cannot finish falls to a local
       :class:`~repro.mpc.executor.ProcessExecutor`;
    3. when fork itself is unavailable, the batch re-runs serially in
       the driver.

    Once every worker is dead the pool loss is permanent:
    :attr:`fallback_reason` is set and later batches go straight to the
    local ladder without re-probing sockets.
    """

    def __init__(
        self,
        workers=None,
        *,
        max_workers: Optional[int] = None,
        faults=None,
        chunk_retries: int = 2,
        lease_s: float = 2.0,
        chunk_timeout_s: float = 120.0,
        connect_timeout_s: float = 2.0,
        heartbeat_s: float = 0.2,
        backoff_s: float = 0.02,
        max_backoff_s: float = 0.5,
    ) -> None:
        if chunk_retries < 0:
            raise ValueError(f"chunk_retries must be >= 0, got {chunk_retries}")
        addrs = parse_worker_addresses(workers) if workers is not None else workers_from_remote_env()
        if max_workers is not None:
            addrs = addrs[: max(1, int(max_workers))]
        self._workers: List[_RemoteWorkerState] = [_RemoteWorkerState(a) for a in addrs]
        self.faults = faults
        self.chunk_retries = int(chunk_retries)
        self.lease_s = float(lease_s)
        self.chunk_timeout_s = float(chunk_timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.heartbeat_s = float(heartbeat_s)
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        #: permanent degradation off the remote pool (no addresses, or
        #: every worker died); per-batch reasons live in degradations
        self.fallback_reason: Optional[str] = None
        if not self._workers:
            self.fallback_reason = (
                f"no remote workers configured (set {REMOTE_WORKERS_ENV_VAR} "
                "or pass --workers HOST:PORT,...)"
            )
        #: per-batch degradation reasons, ProcessExecutor-shaped
        self.degradations: List[str] = []
        self.faults_injected = 0
        self.chunk_retries_used = 0
        self.serial_fallbacks = 0
        # remote-specific counters (superset of the ProcessExecutor set)
        self.dispatched_chunks = 0
        self.redispatched_chunks = 0
        self.duplicate_results = 0
        self.datasets_shipped = 0
        self.local_fallbacks = 0
        self._batch_no = 0
        self._pinged = False
        self._dataset: Optional[Tuple[str, np.ndarray]] = None
        self._cluster_ref: Optional[weakref.ref] = None
        self._local: Optional[ProcessExecutor] = None
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    def bind(self, cluster) -> None:
        """Adopt a cluster: locate the point matrix for the dataset
        cache, keep a weak back-reference for observability, and probe
        the pool once."""
        self._cluster_ref = weakref.ref(cluster)
        array = find_points_array(cluster.metric)
        if array is not None:
            self._dataset = (dataset_fingerprint(array), array)
        self._ping_pool()

    def set_fault_plan(self, faults) -> None:
        """Install (or clear, with ``None``) the fault plan."""
        self.faults = faults

    def shutdown(self) -> None:
        """Release the local fallback executor (idempotent).  Worker
        agents outlive their drivers by design; use
        :meth:`shutdown_agents` to stop them too."""
        if self._local is not None:
            self._local.shutdown()

    def shutdown_agents(self) -> None:
        """Ask every still-alive agent to exit (best effort)."""
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                with socket.create_connection(
                    worker.addr, timeout=self.connect_timeout_s
                ) as sock:
                    send_msg(sock, {"op": "shutdown"})
                    sock.settimeout(self.connect_timeout_s)
                    recv_msg(sock)
            except (OSError, ProtocolError):
                pass
            worker.mark_dead("shut down by driver")

    # -- observability --------------------------------------------------------

    def _alive(self) -> List[_RemoteWorkerState]:
        return [w for w in self._workers if w.alive]

    def effective_workers(self, count: int | None = None) -> int:
        """Workers a ``count``-task batch would actually run on: the
        *surviving* pool size, not the configured one — and the local
        ladder's parallelism once the pool is gone."""
        alive = len(self._alive())
        if self.fallback_reason is not None or alive == 0:
            return self._local_executor().effective_workers(count)
        return alive if count is None else max(1, min(alive, count))

    def pool_status(self) -> dict:
        """Per-worker liveness for health surfaces (``/healthz``)."""
        return {
            "backend": "remote",
            "configured": len(self._workers),
            "alive": len(self._alive()),
            "fallback_reason": self.fallback_reason,
            "workers": {w.label: w.status() for w in self._workers},
        }

    def recovery_stats(self) -> dict:
        """Injection/recovery counters: the ProcessExecutor keys plus
        the remote pool's dispatch/recovery/liveness extras."""
        return {
            "faults_injected": self.faults_injected,
            "chunk_retries": self.chunk_retries_used,
            "serial_fallbacks": self.serial_fallbacks,
            "degradations": list(self.degradations),
            "dispatched_chunks": self.dispatched_chunks,
            "redispatched_chunks": self.redispatched_chunks,
            "duplicate_results": self.duplicate_results,
            "datasets_shipped": self.datasets_shipped,
            "local_fallbacks": self.local_fallbacks,
            "workers_lost": sum(1 for w in self._workers if not w.alive),
            "effective_workers": self.effective_workers(),
            "workers": {w.label: w.status() for w in self._workers},
        }

    def _emit_fault(self, kind: str, injected: bool, target: str = "",
                    attempt: int = 0, detail: str = "") -> None:
        cluster = self._cluster_ref() if self._cluster_ref is not None else None
        # bind() runs from the cluster constructor, before the hub
        # exists — events from the initial pool probe are log-only
        obs = getattr(cluster, "obs", None)
        if obs is None:
            return
        obs.emit_fault(
            FaultEvent(
                layer="remote", kind=kind, injected=injected,
                round_no=getattr(cluster, "round_no", -1), target=target,
                attempt=attempt, detail=detail,
            )
        )

    def _mark_dead(self, worker: _RemoteWorkerState, reason: str) -> None:
        if not worker.alive:
            return
        worker.mark_dead(reason)
        self._emit_fault("worker_lost", injected=False,
                         target=worker.label, detail=reason)
        _log.warning(
            "remote worker lost",
            extra={"worker": worker.label, "reason": reason,
                   "alive": len(self._alive())},
        )
        if not self._alive() and self.fallback_reason is None:
            reasons = "; ".join(
                f"{w.label}: {w.reason}" for w in self._workers
            )
            self.fallback_reason = f"remote pool lost ({reasons})"
            self._emit_fault("pool_lost", injected=False, detail=self.fallback_reason)

    # -- local degradation ladder ---------------------------------------------

    def _local_executor(self) -> ProcessExecutor:
        if self._local is None:
            self._local = ProcessExecutor(
                faults=self.faults, chunk_retries=self.chunk_retries
            )
            cluster = self._cluster_ref() if self._cluster_ref is not None else None
            if cluster is not None:
                self._local.bind(cluster)
        return self._local

    def _record_degradation(self, reason: str) -> None:
        self.degradations.append(reason)
        local = self._local_executor()
        if local.fallback_reason is None:
            self.local_fallbacks += 1
            self._emit_fault("local_fallback", injected=False, detail=reason)
        else:
            self.serial_fallbacks += 1
            self._emit_fault("serial_fallback", injected=False, detail=reason)
        _log.warning(
            "remote batch degraded to local execution",
            extra={"reason": reason, "ladder": "process"
                   if local.fallback_reason is None else "serial"},
        )

    # -- dispatch -------------------------------------------------------------

    def _ping_pool(self) -> None:
        """Probe every worker once: liveness + Python version match
        (closures travel as marshalled code, which is version-bound)."""
        if self._pinged:
            return
        self._pinged = True
        expected = tuple(sys.version_info[:2])
        for worker in self._workers:
            try:
                with socket.create_connection(
                    worker.addr, timeout=self.connect_timeout_s
                ) as sock:
                    sock.settimeout(self.lease_s)
                    send_msg(sock, {"op": "ping"})
                    reply = recv_msg(sock)
                remote_py = tuple(reply.get("python", ()))
                if remote_py != expected:
                    self._mark_dead(
                        worker,
                        f"python {'.'.join(map(str, remote_py))} != "
                        f"driver {'.'.join(map(str, expected))}",
                    )
            except (OSError, ProtocolError) as exc:
                self._mark_dead(worker, f"unreachable: {exc}")

    def _retry_delay(self, attempt: int, key) -> float:
        """Exponential backoff with deterministic ±25% jitter."""
        base = min(self.backoff_s * (2 ** attempt), self.max_backoff_s)
        digest = hashlib.blake2b(
            repr((key, attempt)).encode(), digest_size=8
        ).digest()
        jitter = 0.75 + 0.5 * (int.from_bytes(digest, "big") / 2**64)
        return min(base * jitter, self.max_backoff_s)

    def _ship_dataset(self, worker: _RemoteWorkerState) -> None:
        """Ship the point matrix to one worker (once per fingerprint)."""
        if self._dataset is None:
            return
        fingerprint, array = self._dataset
        with socket.create_connection(
            worker.addr, timeout=self.connect_timeout_s
        ) as conn:
            conn.settimeout(max(self.lease_s, self.chunk_timeout_s))
            send_msg(conn, {
                "op": "put_dataset",
                "fingerprint": fingerprint,
                "shape": tuple(array.shape),
                "dtype": str(array.dtype),
                "blob": np.ascontiguousarray(array).tobytes(),
            })
            reply = recv_msg(conn)
        if not reply.get("ok"):  # pragma: no cover - protocol guard
            raise ProtocolError(f"put_dataset refused: {reply!r}")
        worker.datasets.add(fingerprint)
        self.datasets_shipped += 1

    def _store_result(self, results: dict, chunk_no: int, values, lock) -> bool:
        """First-writer-wins slot fill; duplicates are counted, not
        applied (a re-dispatched chunk's late original result)."""
        with lock:
            if chunk_no in results:
                self.duplicate_results += 1
                self._emit_fault(
                    "duplicate_result", injected=False,
                    target=f"chunk {chunk_no}",
                    detail="late result after lease forfeit; first writer kept",
                )
                return False
            results[chunk_no] = values
            return True

    def _dispatch_chunk(
        self,
        worker: _RemoteWorkerState,
        request: dict,
        results: dict,
        chunk_no: int,
        lock,
    ) -> Tuple[str, object]:
        """Send one chunk to one worker under a heartbeated lease.

        Returns ``("ok", span_dict_or_None)``, ``("fatal", tb_text)``,
        or ``("lost", reason)``.  Connect failures and lease expiry mark
        the worker dead; a dropped connection or corrupt payload only
        loses the chunk (the agent may well still be healthy).
        """
        label = worker.label
        chunk_head = request["chunk"][:3]
        try:
            sock = socket.create_connection(worker.addr, timeout=self.connect_timeout_s)
        except OSError as exc:
            self._mark_dead(worker, f"connect failed: {exc}")
            return ("lost", f"worker {label} unreachable: {exc} (chunk {chunk_head}…)")
        worker.dispatched += 1
        self.dispatched_chunks += 1
        deadline = time.monotonic() + self.chunk_timeout_s
        try:
            sock.settimeout(self.lease_s)
            send_msg(sock, request)
            while True:
                if time.monotonic() > deadline:
                    worker.lost += 1
                    self._mark_dead(worker, "chunk deadline exceeded")
                    self._abandon(sock, results, chunk_no, label)
                    return ("lost",
                            f"worker {label} exceeded the {self.chunk_timeout_s}s "
                            f"chunk deadline (chunk {chunk_head}…)")
                try:
                    reply = recv_msg(sock)
                except socket.timeout:
                    worker.lost += 1
                    self._mark_dead(worker, f"lease expired ({self.lease_s}s without a heartbeat)")
                    self._abandon(sock, results, chunk_no, label)
                    return ("lost",
                            f"worker {label} lease expired after {self.lease_s}s "
                            f"(chunk {chunk_head}…)")
                if "hb" in reply:
                    continue  # lease renewed
                break
        except (OSError, ProtocolError) as exc:
            worker.lost += 1
            sock.close()
            return ("lost",
                    f"worker {label} connection lost: {exc} (chunk {chunk_head}…)")
        sock.close()
        if reply.get("ok"):
            try:
                values, span = pickle.loads(reply["blob"])
            except Exception:
                worker.lost += 1
                return ("lost",
                        f"worker {label} returned an undecodable payload "
                        f"(chunk {chunk_head}…)")
            stored = self._store_result(results, chunk_no, values, lock)
            return ("ok", span if stored else None)
        if "need_dataset" in reply:
            return ("need_dataset", reply["need_dataset"])
        return ("fatal", str(reply.get("fatal", "worker reported an unknown error")))

    def _abandon(self, sock: socket.socket, results: dict, chunk_no: int, label: str) -> None:
        """Keep listening on a forfeited chunk's socket in the
        background: if the slow worker eventually answers, the late
        result hits the first-writer-wins gate instead of a closed
        port (and is counted as a duplicate)."""
        lock = self._lock

        def reap() -> None:
            try:
                sock.settimeout(self.chunk_timeout_s)
                while True:
                    reply = recv_msg(sock)
                    if "hb" in reply:
                        continue
                    if reply.get("ok"):
                        values, _span = pickle.loads(reply["blob"])
                        self._store_result(results, chunk_no, values, lock)
                    return
            except Exception:
                return
            finally:
                sock.close()

        threading.Thread(target=reap, daemon=True).start()

    def _remote_map(self, mode: str, fn, items: Sequence, count: int) -> list:
        """Strided chunks over the surviving pool, waves of dispatch
        with bounded re-dispatch — the remote analogue of
        ``ProcessExecutor._fork_map``."""
        self._ping_pool()
        alive = self._alive()
        if not alive:
            raise _PoolFailure(self.fallback_reason or "no live remote workers")
        workers_n = min(len(alive), count)
        self._batch_no += 1
        batch_no = self._batch_no
        plan = self.faults
        cluster = self._cluster_ref() if self._cluster_ref is not None else None
        parent_ctx = cluster.obs.trace_parent() if cluster is not None else None

        chunks = [list(range(w, count, workers_n)) for w in range(workers_n)]
        pending: List[Tuple[int, List[int]]] = [
            (w, chunk) for w, chunk in enumerate(chunks) if chunk
        ]
        results: dict = {}
        lock = self._lock
        earlier_reasons: List[str] = []
        attempt = 0
        while True:
            alive = self._alive()
            if not alive:
                raise _PoolFailure(
                    "; ".join(earlier_reasons) or "no live remote workers"
                )
            # build and fire this wave concurrently; each dispatch holds
            # its own lease, so the wave lasts as long as its slowest chunk
            wave: List[Tuple[int, List[int], _RemoteWorkerState, dict]] = []
            for widx, chunk in pending:
                worker = alive[(widx + attempt) % len(alive)]
                try:
                    blob = self._build_blob(mode, fn, items, chunk)
                except Exception as exc:
                    raise _PoolFailure(
                        f"task cannot be shipped to remote workers: {exc!r}"
                    ) from None
                action = plan.remote_fault(batch_no, widx, attempt) if plan else None
                if action is not None:
                    self.faults_injected += 1
                    kind = {"drop": "connection_drop", "kill": "worker_kill",
                            "corrupt": "payload_corrupt", "delay": "worker_delay"}[action]
                    self._emit_fault(
                        kind, injected=True,
                        target=f"worker {worker.label} chunk {chunk[:3]}",
                        attempt=attempt, detail=f"batch {batch_no}",
                    )
                    _log.info(
                        "remote fault injected",
                        extra={"kind": kind, "worker": worker.label,
                               "batch": batch_no, "attempt": attempt},
                    )
                ctx = (
                    parent_ctx.child("remote/chunk")
                    if parent_ctx is not None else None
                )
                request = {
                    "op": "run",
                    "mode": mode,
                    "blob": blob,
                    "batch": batch_no,
                    "worker": widx,
                    "attempt": attempt,
                    "chunk": list(chunk),
                    "traceparent": ctx.to_traceparent() if ctx is not None else None,
                    "parent_span": ctx.parent_id if ctx is not None else None,
                    "inject": action,
                    "delay_s": plan.remote_delay_s if plan is not None else 0.0,
                    "heartbeat_s": self.heartbeat_s,
                }
                if self._dataset is not None and self._dataset[0] not in worker.datasets:
                    try:
                        self._ship_dataset(worker)
                    except (OSError, ProtocolError) as exc:
                        self._mark_dead(worker, f"dataset ship failed: {exc}")
                wave.append((widx, chunk, worker, request))

            outcomes: List[Optional[Tuple[str, object]]] = [None] * len(wave)

            def fire(i: int, widx: int, chunk: List[int],
                     worker: _RemoteWorkerState, request: dict) -> None:
                if not worker.alive:
                    outcomes[i] = ("lost", f"worker {worker.label} already dead: "
                                           f"{worker.reason} (chunk {chunk[:3]}…)")
                    return
                outcome = self._dispatch_chunk(worker, request, results, widx, lock)
                if outcome[0] == "need_dataset":
                    # freshly restarted worker: its cache is cold — ship
                    # and re-send once, transparently
                    self._emit_fault(
                        "dataset_reship", injected=False, target=worker.label,
                        detail=f"cache miss for {outcome[1]}",
                    )
                    try:
                        self._ship_dataset(worker)
                    except (OSError, ProtocolError) as exc:
                        self._mark_dead(worker, f"dataset ship failed: {exc}")
                        outcomes[i] = ("lost",
                                       f"worker {worker.label} lost its dataset and "
                                       f"could not be re-shipped: {exc}")
                        return
                    outcome = self._dispatch_chunk(worker, request, results, widx, lock)
                if outcome[0] == "lost" and request.get("inject") == "kill":
                    # the plan killed this agent; don't burn a retry
                    # probing its corpse next wave
                    self._mark_dead(worker, "injected worker kill")
                outcomes[i] = outcome

            threads = [
                threading.Thread(target=fire, args=(i,) + entry, daemon=True)
                for i, entry in enumerate(wave)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            fatal: List[str] = []
            retryable: List[Tuple[int, List[int]]] = []
            reasons: List[str] = []
            for (widx, chunk, worker, _request), outcome in zip(wave, outcomes):
                status, payload = outcome
                if status == "ok":
                    if payload is not None and cluster is not None:
                        cluster.obs.emit_exec_span(ExecSpanRecord(**payload))
                elif status == "fatal":
                    fatal.append(str(payload))
                else:  # "lost"
                    if widx in results:
                        # a reaper salvaged the late result meanwhile
                        continue
                    reasons.append(str(payload))
                    retryable.append((widx, chunk))
            if fatal:
                raise _PoolFailure("; ".join(fatal + reasons))
            if not retryable:
                return self._gather(results, chunks, count)
            if attempt >= self.chunk_retries:
                raise _PoolFailure(
                    "; ".join(earlier_reasons + reasons)
                    + f" (chunk retry budget {self.chunk_retries} exhausted)"
                )
            earlier_reasons.extend(reasons)
            self.chunk_retries_used += len(retryable)
            self.redispatched_chunks += len(retryable)
            for (widx, chunk), reason in zip(retryable, reasons):
                self._emit_fault(
                    "chunk_redispatch", injected=False,
                    target=f"chunk {widx} {chunk[:3]}",
                    attempt=attempt + 1, detail=reason,
                )
                _log.warning(
                    "remote chunk lost; re-dispatching to survivors",
                    extra={"chunk": widx, "batch": batch_no,
                           "attempt": attempt + 1, "reason": reason},
                )
            pending = retryable
            attempt += 1
            time.sleep(self._retry_delay(attempt, (batch_no, "redispatch")))

    def _gather(self, results: dict, chunks: List[List[int]], count: int) -> list:
        """Flatten per-chunk value lists back into task-index order."""
        out: list = [None] * count
        for chunk_no, chunk in enumerate(chunks):
            if not chunk:
                continue
            values = results[chunk_no]
            for i, value in zip(chunk, values):
                out[i] = value
        return out

    def _build_blob(self, mode: str, fn, items: Sequence, chunk: List[int]) -> bytes:
        if mode == "machines":
            payload = (fn, [items[i] for i in chunk])
        else:
            payload = (fn, list(chunk))
        return dumps_task(payload, dataset=self._dataset)

    # -- the ExecutionBackend surface ----------------------------------------

    def map_indexed(self, fn: Callable[[int], T], count: int) -> List[T]:
        """Evaluate ``fn(i)`` for ``i in range(count)`` across the pool,
        in index order; degrades down the local ladder when the pool
        cannot finish."""
        if count <= 1:
            return [fn(i) for i in range(count)]
        if self.fallback_reason is not None or not self._alive():
            return self._local_executor().map_indexed(fn, count)
        try:
            return self._remote_map("indexed", fn, range(count), count)
        except _PoolFailure as exc:
            self._record_degradation(str(exc))
            return self._local_executor().map_indexed(fn, count)

    def map_machines(self, fn, machines: Sequence, metric=None) -> list:
        """Machine-aware dispatch with state synchronisation, shipped
        over the wire: workers return ``(value, rng_state,
        oracle_deltas)`` per machine, the driver replays them — a
        remote run is bit-identical to a serial one, CountingOracle
        ledger included."""
        count = len(machines)
        if count <= 1:
            return [fn(mach) for mach in machines]
        if self.fallback_reason is not None or not self._alive():
            return self._local_executor().map_machines(fn, machines, metric=metric)
        try:
            packed = self._remote_map("machines", fn, machines, count)
        except _PoolFailure as exc:
            self._record_degradation(str(exc))
            return self._local_executor().map_machines(fn, machines, metric=metric)

        counting = _counting_layers(metric)
        values = []
        for i, (value, rng_state, deltas) in enumerate(packed):
            machines[i].rng.bit_generator.state = rng_state
            for layer, (d_calls, d_evals) in zip(counting, deltas):
                layer.calls += d_calls
                layer.evaluations += d_evals
            values.append(value)
        return values
