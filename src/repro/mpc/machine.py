"""A simulated MPC machine.

A :class:`Machine` owns a partition of the input ids, a *known-point*
mask (its partition plus every point it has received), a private
key-value store for algorithm state, and a private RNG stream spawned
deterministically from the cluster seed.

All local distance computation goes through the machine's metric
helpers (:meth:`pairwise`, :meth:`dist_to_set`, …), which in strict mode
verify that every id involved is known to this machine — this is what
catches algorithms that accidentally peek at remote data.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

import numpy as np

from repro.exceptions import UnknownPointError
from repro.metric.base import Metric


class Machine:
    """One simulated machine.

    Parameters
    ----------
    machine_id:
        Index of this machine, ``0 .. m-1`` (machine 0 doubles as the
        *central machine* in the paper's algorithms).
    metric:
        The shared distance oracle (read-only; communication of point
        data is what's accounted, not the oracle object itself).
    local_ids:
        The ids of this machine's input partition.
    rng:
        Private random generator for this machine.
    strict:
        Enforce known-point discipline on every distance computation.
    """

    def __init__(
        self,
        machine_id: int,
        metric: Metric,
        local_ids: np.ndarray,
        rng: np.random.Generator,
        strict: bool = True,
    ) -> None:
        self.id = int(machine_id)
        self.metric = metric
        self.local_ids = np.asarray(local_ids, dtype=np.int64).copy()
        self.rng = rng
        self.strict = strict
        self.store: Dict[str, Any] = {}
        self._known = np.zeros(metric.n, dtype=bool)
        self._known[self.local_ids] = True

    # -- known-point bookkeeping ------------------------------------------------

    @property
    def known_count(self) -> int:
        """Number of points this machine can currently touch."""
        return int(self._known.sum())

    def known_words(self) -> int:
        """Approximate words of point data held (memory accounting)."""
        return self.known_count * self.metric.point_words()

    def knows(self, ids: Iterable[int]) -> bool:
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        return bool(self._known[ids].all()) if ids.size else True

    def learn(self, ids: Iterable[int]) -> None:
        """Mark points as known (called by the cluster on delivery)."""
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        self._known[ids] = True

    def require_known(self, ids: Iterable[int]) -> None:
        if not self.strict:
            return
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        if ids.size and ids.min() < 0:
            # negative ids would silently wrap in the mask lookup
            raise UnknownPointError(self.id, int(ids[ids < 0][0]))
        mask = self._known[ids]
        if not mask.all():
            bad = int(ids[~mask][0])
            raise UnknownPointError(self.id, bad)

    # -- local metric helpers (strict-checked) -----------------------------------

    def pairwise(self, I: Iterable[int], J: Iterable[int]) -> np.ndarray:
        self.require_known(I)
        self.require_known(J)
        return self.metric.pairwise(I, J)

    def dist_to_set(self, I: Iterable[int], T: Iterable[int]) -> np.ndarray:
        self.require_known(I)
        self.require_known(T)
        return self.metric.dist_to_set(I, T)

    def radius(self, X: Iterable[int], Y: Iterable[int]) -> float:
        self.require_known(X)
        self.require_known(Y)
        return self.metric.radius(X, Y)

    def diversity(self, S: Iterable[int]) -> float:
        self.require_known(S)
        return self.metric.diversity(S)

    def count_within(self, I: Iterable[int], J: Iterable[int], tau: float) -> np.ndarray:
        self.require_known(I)
        self.require_known(J)
        return self.metric.count_within(I, J, tau)

    def within(self, I: Iterable[int], J: Iterable[int], tau: float) -> np.ndarray:
        self.require_known(I)
        self.require_known(J)
        return self.metric.within(I, J, tau)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine(id={self.id}, |local|={self.local_ids.size}, known={self.known_count})"
