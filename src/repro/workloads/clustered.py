"""Well-separated clusters with analytically known optimum envelopes.

When cluster centers sit at pairwise distance ≥ ``separation`` and each
cluster fits in a ball of radius ``cluster_radius`` with
``separation > 4·cluster_radius``, the optimal k-center radius (for
``k = #clusters``) is at most ``cluster_radius`` and at least
``(separation − 2·cluster_radius)/2`` for any solution using fewer
centers — a workload where approximation factors are directly visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class SeparatedClusters:
    """Generated instance plus its analytic envelopes."""

    points: np.ndarray
    labels: np.ndarray
    centers: np.ndarray
    cluster_radius: float
    separation: float

    @property
    def kcenter_upper_bound(self) -> float:
        """Optimal radius for k = #clusters is at most this."""
        return self.cluster_radius


def separated_clusters(
    n: int,
    clusters: int,
    dim: int = 2,
    cluster_radius: float = 1.0,
    separation: float = 10.0,
    rng: Optional[np.random.Generator] = None,
) -> SeparatedClusters:
    """``n`` points split evenly over well-separated round clusters.

    Cluster centers are placed greedily (rejection sampling) so all
    pairwise center distances are ≥ ``separation``.
    """
    rng = rng or np.random.default_rng(0)
    if separation <= 2 * cluster_radius:
        raise ValueError("separation must exceed the cluster diameter")
    box = separation * max(2.0, clusters ** (1.0 / dim)) * 2.0
    centers: list[np.ndarray] = []
    attempts = 0
    while len(centers) < clusters:
        cand = rng.uniform(-box, box, size=dim)
        if all(np.linalg.norm(cand - c) >= separation for c in centers):
            centers.append(cand)
        attempts += 1
        if attempts > 100_000:
            raise RuntimeError("could not place separated cluster centers; lower the separation")
    C = np.stack(centers)

    labels = np.arange(n) % clusters
    rng.shuffle(labels)
    # uniform in the ball of the cluster radius
    g = rng.normal(size=(n, dim))
    g /= np.linalg.norm(g, axis=1, keepdims=True)
    r = cluster_radius * rng.random(n) ** (1.0 / dim)
    points = C[labels] + g * r[:, None]
    return SeparatedClusters(
        points=points,
        labels=labels,
        centers=C,
        cluster_radius=cluster_radius,
        separation=separation,
    )
