"""Geographic workloads: synthetic "world cities" on the sphere.

Real city gazetteers are unavailable offline, so we synthesize one with
the same statistical signature: population centers (continent-scale
mixture components) with city clusters around them, avoiding the poles.
The substitution preserves what the algorithms exercise — a non-flat
metric with strongly non-uniform density.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.metric.haversine import HaversineMetric


def synthetic_cities(
    n: int,
    continents: int = 6,
    continent_spread_deg: float = 18.0,
    city_spread_deg: float = 2.5,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``n`` (lat, lon) city coordinates.

    Continent centers are drawn in the habitable band (|lat| ≤ 55°);
    metro areas scatter around them, cities around metros.  Returns
    ``(coords_deg, continent_labels)``.
    """
    rng = rng or np.random.default_rng(0)
    if n < 1 or continents < 1:
        raise ValueError("need n >= 1 and continents >= 1")
    centers = np.stack(
        [
            rng.uniform(-55.0, 55.0, size=continents),
            rng.uniform(-180.0, 180.0, size=continents),
        ],
        axis=1,
    )
    labels = rng.integers(0, continents, size=n)
    metro_offsets = rng.normal(scale=continent_spread_deg, size=(n, 2))
    city_offsets = rng.normal(scale=city_spread_deg, size=(n, 2))
    coords = centers[labels] + metro_offsets + city_offsets
    coords[:, 0] = np.clip(coords[:, 0], -89.0, 89.0)
    coords[:, 1] = ((coords[:, 1] + 180.0) % 360.0) - 180.0
    return coords, labels


def world_cities_metric(
    n: int, rng: Optional[np.random.Generator] = None
) -> Tuple[HaversineMetric, np.ndarray]:
    """Synthetic world-cities instance under the haversine metric."""
    coords, labels = synthetic_cities(n, rng=rng)
    return HaversineMetric(coords), labels
