"""Synthetic coordinate workloads."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def gaussian_mixture(
    n: int,
    dim: int = 2,
    components: int = 8,
    spread: float = 8.0,
    sigma: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``n`` points from a mixture of isotropic Gaussians.

    Component means are drawn uniformly from ``[-spread, spread]^dim``.
    Returns ``(points, labels)``.
    """
    rng = rng or np.random.default_rng(0)
    if n < 1 or components < 1:
        raise ValueError("need n >= 1 and components >= 1")
    means = rng.uniform(-spread, spread, size=(components, dim))
    labels = rng.integers(0, components, size=n)
    points = means[labels] + rng.normal(scale=sigma, size=(n, dim))
    return points, labels


def uniform_cube(
    n: int,
    dim: int = 2,
    side: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """``n`` points uniform in ``[0, side]^dim``."""
    rng = rng or np.random.default_rng(0)
    return rng.uniform(0.0, side, size=(n, dim))


def uniform_ball(
    n: int,
    dim: int = 2,
    radius: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """``n`` points uniform in the ``dim``-ball of the given radius."""
    rng = rng or np.random.default_rng(0)
    g = rng.normal(size=(n, dim))
    g /= np.linalg.norm(g, axis=1, keepdims=True)
    r = radius * rng.random(n) ** (1.0 / dim)
    return g * r[:, None]


def anisotropic_blobs(
    n: int,
    dim: int = 2,
    components: int = 4,
    spread: float = 10.0,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs with per-component random covariance stretch —
    breaks algorithms that implicitly assume isotropy."""
    rng = rng or np.random.default_rng(0)
    means = rng.uniform(-spread, spread, size=(components, dim))
    scales = rng.uniform(0.2, 3.0, size=(components, dim))
    labels = rng.integers(0, components, size=n)
    points = means[labels] + rng.normal(size=(n, dim)) * scales[labels]
    return points, labels
