"""Degenerate and adversarial workloads.

These target the algorithms' edge cases: zero distances (duplicates,
all-equal inputs), scale-free spreads that break fixed ladders, and
colinear chains where threshold graphs become long paths.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def all_equal_points(n: int, dim: int = 2, value: float = 1.0) -> np.ndarray:
    """All ``n`` points identical — every distance is 0."""
    return np.full((n, dim), value, dtype=np.float64)


def with_duplicates(
    points: np.ndarray,
    fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Replace a fraction of points with exact copies of the others."""
    if not (0.0 <= fraction < 1.0):
        raise ValueError("fraction must be in [0, 1)")
    rng = rng or np.random.default_rng(0)
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    dups = int(fraction * n)
    if dups == 0:
        return points.copy()
    keep = points[: n - dups]
    copies = keep[rng.integers(0, keep.shape[0], size=dups)]
    return np.concatenate([keep, copies])


def exponential_spread(n: int, base: float = 2.0, dim: int = 1) -> np.ndarray:
    """Points at exponentially growing coordinates: ``base^i`` on the
    first axis — distances span ``base^n`` dynamic range, stressing
    geometric ladders."""
    xs = base ** np.arange(n, dtype=np.float64)
    out = np.zeros((n, dim), dtype=np.float64)
    out[:, 0] = xs
    return out


def colinear_chain(n: int, step: float = 1.0, dim: int = 2) -> np.ndarray:
    """Evenly spaced points on a line — ``G_τ`` is a path power, the
    worst case for greedy independence claims."""
    out = np.zeros((n, dim), dtype=np.float64)
    out[:, 0] = step * np.arange(n, dtype=np.float64)
    return out
