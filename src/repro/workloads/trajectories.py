"""Trajectory-style arrival workloads: bursty walkers for append chains.

The incremental-dataset machinery (``DatasetRegistry.append`` + the
warm-start re-solve, see ``docs/streaming.md``) needs a workload whose
points *arrive over time* with the statistical signature of movement
data (GeoLife-like GPS traces): a handful of walkers anchored around
population centers, each emitting a burst of positions per epoch and
drifting between epochs.  Built on the synthetic-cities anchors of
:mod:`repro.workloads.geo`, but emitted as planar (lat, lon)-degree
coordinates under the *Euclidean* metric — append chains rebuild their
metric from a registered name, so the arrival workload stays in the
named-metric family.

:func:`trajectory_stream` is the arrival view — a list of per-epoch
batches whose concatenation is the full dataset — and is what the
``repro stream`` CLI feeds to ``append``.  The registered
``'trajectories'`` workload is the flat view (all epochs concatenated),
so cold solves of the full dataset are expressible as a plain named
workload.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.workloads.geo import synthetic_cities


def trajectory_stream(
    n: int,
    batches: int = 4,
    walkers: int = 8,
    step_deg: float = 0.8,
    burst_spread_deg: float = 0.35,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Generate ``batches`` arrival batches totalling ``n`` points.

    ``walkers`` start at synthetic-city anchors; each epoch every
    walker takes a random step of scale ``step_deg`` (with an
    occasional longer relocation — bursty, heavy-ish tails) and emits
    its share of the epoch's points as a Gaussian burst of spread
    ``burst_spread_deg`` around its position.  Earlier epochs get the
    rounding remainder, so batch sizes differ by at most one and
    ``sum(len(b) for b in batches) == n``.

    Deterministic for a fixed ``rng`` seed; coordinates are planar
    (lat, lon) degrees intended for the Euclidean metric.
    """
    if n < batches:
        raise ValueError(f"need n >= batches, got n={n}, batches={batches}")
    if batches < 1 or walkers < 1:
        raise ValueError("need batches >= 1 and walkers >= 1")
    rng = rng or np.random.default_rng(0)
    anchors, _ = synthetic_cities(walkers, rng=rng)
    positions = anchors.copy()

    base, extra = divmod(n, batches)
    out: List[np.ndarray] = []
    for epoch in range(batches):
        size = base + (1 if epoch < extra else 0)
        # walker drift: small Gaussian step, occasionally a relocation
        # jump an order of magnitude longer (bursty movement)
        steps = rng.normal(scale=step_deg, size=positions.shape)
        jumps = rng.random(walkers) < 0.15
        steps[jumps] *= 10.0
        positions = positions + steps
        owners = rng.integers(0, walkers, size=size)
        points = positions[owners] + rng.normal(
            scale=burst_spread_deg, size=(size, 2)
        )
        out.append(points)
    return out


__all__ = ["trajectory_stream"]
