"""Workload generators for experiments and benchmarks.

* :mod:`repro.workloads.synthetic` — gaussian mixtures, uniform cubes
  and balls, anisotropic blobs;
* :mod:`repro.workloads.clustered` — well-separated clusters with
  analytically known optimum envelopes;
* :mod:`repro.workloads.adversarial` — duplicates, exponential spread,
  colinear chains, all-equal degenerate inputs;
* :mod:`repro.workloads.outliers` — clustered data plus uniform noise;
* :mod:`repro.workloads.suppliers` — customer/supplier instances;
* :mod:`repro.workloads.graphs` — graph-metric workloads (grids,
  random geometric graphs);
* :mod:`repro.workloads.trajectories` — bursty walker arrival batches
  for append chains and warm-start re-solves;
* :mod:`repro.workloads.registry` — name → builder registry used by the
  CLI and the benchmark harness.
"""

from repro.workloads.adversarial import (
    all_equal_points,
    colinear_chain,
    exponential_spread,
    with_duplicates,
)
from repro.workloads.clustered import separated_clusters
from repro.workloads.geo import synthetic_cities, world_cities_metric
from repro.workloads.graphs import grid_graph_metric, random_geometric_graph_metric
from repro.workloads.outliers import clustered_with_outliers
from repro.workloads.registry import available_workloads, make_workload
from repro.workloads.suppliers import supplier_instance
from repro.workloads.trajectories import trajectory_stream
from repro.workloads.synthetic import (
    anisotropic_blobs,
    gaussian_mixture,
    uniform_ball,
    uniform_cube,
)

__all__ = [
    "gaussian_mixture",
    "uniform_cube",
    "uniform_ball",
    "anisotropic_blobs",
    "separated_clusters",
    "with_duplicates",
    "exponential_spread",
    "colinear_chain",
    "all_equal_points",
    "clustered_with_outliers",
    "supplier_instance",
    "grid_graph_metric",
    "random_geometric_graph_metric",
    "synthetic_cities",
    "world_cities_metric",
    "trajectory_stream",
    "make_workload",
    "available_workloads",
]
