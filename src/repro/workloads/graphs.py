"""Graph-metric workloads.

The paper's guarantees hold in *any* metric space; exercising a
shortest-path metric (where Euclidean intuition fails) is a stronger
test than coordinates alone."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.metric.graph_metric import GraphShortestPathMetric


def grid_graph_metric(rows: int, cols: int, weight: float = 1.0) -> GraphShortestPathMetric:
    """Shortest-path metric of a ``rows × cols`` grid graph."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    n = rows * cols
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1, weight))
            if r + 1 < rows:
                edges.append((v, v + cols, weight))
    return GraphShortestPathMetric(n, edges)


def random_geometric_graph_metric(
    n: int,
    radius: float = 0.25,
    dim: int = 2,
    rng: Optional[np.random.Generator] = None,
    max_retries: int = 50,
) -> GraphShortestPathMetric:
    """Shortest-path metric of a connected random geometric graph.

    Vertices are uniform in the unit cube; edges connect pairs within
    ``radius`` with Euclidean weight.  The radius is grown until the
    graph is connected.
    """
    rng = rng or np.random.default_rng(0)
    pts = rng.random((n, dim))
    for _ in range(max_retries):
        diff = pts[:, None, :] - pts[None, :, :]
        D = np.sqrt((diff * diff).sum(axis=2))
        iu = np.triu_indices(n, k=1)
        mask = D[iu] <= radius
        edges = [
            (int(i), int(j), float(D[i, j]))
            for i, j in zip(iu[0][mask], iu[1][mask])
        ]
        try:
            return GraphShortestPathMetric(n, edges, precompute=True)
        except ValueError:
            radius *= 1.3  # disconnected: widen and retry
    raise RuntimeError("could not build a connected geometric graph")
