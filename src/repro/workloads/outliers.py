"""Clustered data contaminated with uniform background noise —
the regime the outlier-aware baselines (Charikar, Malkomes-13) exist
for, and a robustness stressor for the clean-data algorithms."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.workloads.clustered import separated_clusters


def clustered_with_outliers(
    n: int,
    clusters: int,
    outlier_fraction: float = 0.05,
    dim: int = 2,
    cluster_radius: float = 1.0,
    separation: float = 10.0,
    noise_box: float = 60.0,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Separated clusters plus uniform noise.

    Returns ``(points, labels)`` with ``label = -1`` marking outliers.
    """
    if not (0.0 <= outlier_fraction < 1.0):
        raise ValueError("outlier_fraction must be in [0, 1)")
    rng = rng or np.random.default_rng(0)
    n_out = int(outlier_fraction * n)
    n_in = n - n_out
    inst = separated_clusters(
        n_in, clusters, dim, cluster_radius, separation, rng=rng
    )
    noise = rng.uniform(-noise_box, noise_box, size=(n_out, dim))
    points = np.concatenate([inst.points, noise])
    labels = np.concatenate([inst.labels, np.full(n_out, -1, dtype=np.int64)])
    perm = rng.permutation(n)
    return points[perm], labels[perm]
