"""Named workload registry used by the CLI and the benchmark harness.

Each builder takes ``(n, rng)`` and returns a
:class:`WorkloadInstance`: a metric plus optional ground-truth labels
and notes.  The registry keeps benchmark parameterization declarative —
a bench row says ``workload='gaussian'`` and gets the same data every
harness run (seeded).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.metric.base import Metric
from repro.metric.euclidean import EuclideanMetric
from repro.metric.lp import ManhattanMetric
from repro.workloads.adversarial import (
    colinear_chain,
    exponential_spread,
    with_duplicates,
)
from repro.workloads.clustered import separated_clusters
from repro.workloads.outliers import clustered_with_outliers
from repro.workloads.synthetic import (
    anisotropic_blobs,
    gaussian_mixture,
    uniform_cube,
)


@dataclass
class WorkloadInstance:
    """A ready-to-cluster instance."""

    name: str
    metric: Metric
    labels: Optional[np.ndarray] = None
    notes: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.metric.n

    def fingerprint(self) -> Optional[str]:
        """Content fingerprint of the instance's points (see
        :func:`fingerprint_metric`); ``None`` for oracle-only metrics."""
        return fingerprint_metric(self.metric)


def canonical_point_bytes(metric) -> Optional[bytes]:
    """Canonical byte encoding of a metric's point matrix.

    Walks the metric's wrapper chain (``CountingOracle`` etc. expose
    ``inner``) to the first layer with a ``points`` container and
    serializes its ``(n, d)`` float64 array C-contiguously, prefixed
    with a shape/dtype header so e.g. ``(2, 3)`` and ``(3, 2)`` data
    with the same bytes cannot collide.  Returns ``None`` for metrics
    that carry no coordinates (explicit matrix, graph) — callers must
    fall back to identity-based keys for those.
    """
    seen: set = set()
    while metric is not None and id(metric) not in seen:
        seen.add(id(metric))
        points = getattr(metric, "points", None)
        if points is not None and hasattr(points, "data"):
            arr = np.ascontiguousarray(np.asarray(points.data, dtype=np.float64))
            header = f"points:{arr.shape[0]}x{arr.shape[1]}:float64:".encode()
            return header + arr.tobytes()
        metric = getattr(metric, "inner", None)
    return None


def fingerprint_points(points) -> str:
    """SHA-256 hex digest of a raw point array's canonical bytes."""
    arr = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    header = f"points:{arr.shape[0]}x{arr.shape[1]}:float64:".encode()
    return hashlib.sha256(header + arr.tobytes()).hexdigest()


def metric_identity(metric) -> str:
    """Stable identity string of a metric's *distance function*.

    Unwraps pass-through layers (``CountingOracle`` etc. expose
    ``inner``) to the concrete metric and names it together with any
    distance-shaping parameter (currently the Minkowski exponent
    ``p``).  Wrapping a metric never changes its identity; changing the
    distance function always does.
    """
    seen: set = set()
    inner = metric
    while inner is not None and id(inner) not in seen:
        seen.add(id(inner))
        nxt = getattr(inner, "inner", None)
        if nxt is None:
            break
        inner = nxt
    name = type(inner).__name__
    p = getattr(inner, "p", None)
    return f"{name}(p={float(p)!r})" if p is not None else name


def fingerprint_metric(metric) -> Optional[str]:
    """SHA-256 content fingerprint of the metric, or ``None``.

    Covers both the point matrix (via :func:`canonical_point_bytes`)
    and the distance function (via :func:`metric_identity`): two
    metrics over bit-identical points get the same fingerprint exactly
    when they also compute the same distances — the property the
    service's dataset registry and result cache rely on.  The same
    points under e.g. euclidean and manhattan metrics therefore get
    *different* fingerprints and can never cross-serve cached results.
    """
    blob = canonical_point_bytes(metric)
    if blob is None:
        return None
    tagged = metric_identity(metric).encode() + b"\x00" + blob
    return hashlib.sha256(tagged).hexdigest()


def _gaussian(n: int, rng: np.random.Generator) -> WorkloadInstance:
    pts, labels = gaussian_mixture(n, dim=2, components=8, rng=rng)
    return WorkloadInstance("gaussian", EuclideanMetric(pts), labels)


def _uniform(n: int, rng: np.random.Generator) -> WorkloadInstance:
    pts = uniform_cube(n, dim=2, side=10.0, rng=rng)
    return WorkloadInstance("uniform", EuclideanMetric(pts))


def _clustered(n: int, rng: np.random.Generator) -> WorkloadInstance:
    inst = separated_clusters(n, clusters=8, dim=2, rng=rng)
    return WorkloadInstance(
        "clustered",
        EuclideanMetric(inst.points),
        inst.labels,
        notes={"kcenter_ub": inst.kcenter_upper_bound, "clusters": 8},
    )


def _anisotropic(n: int, rng: np.random.Generator) -> WorkloadInstance:
    pts, labels = anisotropic_blobs(n, dim=2, components=4, rng=rng)
    return WorkloadInstance("anisotropic", EuclideanMetric(pts), labels)


def _outliers(n: int, rng: np.random.Generator) -> WorkloadInstance:
    pts, labels = clustered_with_outliers(n, clusters=6, outlier_fraction=0.05, rng=rng)
    return WorkloadInstance("outliers", EuclideanMetric(pts), labels)


def _duplicates(n: int, rng: np.random.Generator) -> WorkloadInstance:
    pts, labels = gaussian_mixture(max(2, n // 2) * 2, dim=2, components=4, rng=rng)
    pts = with_duplicates(pts, fraction=0.5, rng=rng)[:n]
    return WorkloadInstance("duplicates", EuclideanMetric(pts))


def _exponential(n: int, rng: np.random.Generator) -> WorkloadInstance:
    # cap the dynamic range so float64 stays exact
    pts = exponential_spread(min(n, 900), base=1.08, dim=2)
    return WorkloadInstance("exponential", EuclideanMetric(pts))


def _chain(n: int, rng: np.random.Generator) -> WorkloadInstance:
    return WorkloadInstance("chain", EuclideanMetric(colinear_chain(n)))


def _manhattan_gaussian(n: int, rng: np.random.Generator) -> WorkloadInstance:
    pts, labels = gaussian_mixture(n, dim=3, components=6, rng=rng)
    return WorkloadInstance("manhattan-gaussian", ManhattanMetric(pts), labels)


def _cities(n: int, rng: np.random.Generator) -> WorkloadInstance:
    from repro.workloads.geo import world_cities_metric

    metric, labels = world_cities_metric(n, rng=rng)
    return WorkloadInstance("cities", metric, labels, notes={"unit": "km"})


def _trajectories(n: int, rng: np.random.Generator) -> WorkloadInstance:
    from repro.workloads.trajectories import trajectory_stream

    batches = trajectory_stream(n, rng=rng)
    pts = np.vstack(batches)
    labels = np.concatenate(
        [np.full(len(b), i, dtype=np.int64) for i, b in enumerate(batches)]
    )
    return WorkloadInstance(
        "trajectories",
        EuclideanMetric(pts),
        labels,
        notes={"batches": len(batches), "unit": "deg"},
    )


_REGISTRY: Dict[str, Callable[[int, np.random.Generator], WorkloadInstance]] = {
    "gaussian": _gaussian,
    "uniform": _uniform,
    "clustered": _clustered,
    "anisotropic": _anisotropic,
    "outliers": _outliers,
    "duplicates": _duplicates,
    "exponential": _exponential,
    "chain": _chain,
    "manhattan-gaussian": _manhattan_gaussian,
    "cities": _cities,
    "trajectories": _trajectories,
}


def available_workloads() -> list[str]:
    """Names accepted by :func:`make_workload`."""
    return sorted(_REGISTRY)


def make_workload(name: str, n: int, seed: int = 0) -> WorkloadInstance:
    """Build the named workload with ``n`` points, deterministically."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        ) from None
    return builder(n, np.random.default_rng(seed))
