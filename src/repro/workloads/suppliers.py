"""Customer/supplier instances for the k-supplier experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.workloads.synthetic import gaussian_mixture


@dataclass
class SupplierInstance:
    """A k-supplier instance over one shared coordinate array.

    ``points`` stacks customers first, suppliers second; ``customers``
    and ``suppliers`` are the id ranges of each role.
    """

    points: np.ndarray
    customers: np.ndarray
    suppliers: np.ndarray


def supplier_instance(
    n_customers: int,
    n_suppliers: int,
    dim: int = 2,
    components: int = 6,
    supplier_layout: str = "uniform",
    rng: Optional[np.random.Generator] = None,
) -> SupplierInstance:
    """Clustered customers + suppliers laid out per ``supplier_layout``.

    ``'uniform'`` scatters suppliers over the customer bounding box
    (the generic case); ``'colocated'`` samples suppliers from the same
    mixture (easy); ``'perimeter'`` pushes suppliers to the box border
    (hard — every service distance is large).
    """
    rng = rng or np.random.default_rng(0)
    cust, _ = gaussian_mixture(n_customers, dim=dim, components=components, rng=rng)
    lo, hi = cust.min(axis=0), cust.max(axis=0)
    span = np.maximum(hi - lo, 1e-9)

    if supplier_layout == "uniform":
        sup = lo + span * rng.random((n_suppliers, dim))
    elif supplier_layout == "colocated":
        sup, _ = gaussian_mixture(n_suppliers, dim=dim, components=components, rng=rng)
    elif supplier_layout == "perimeter":
        sup = lo + span * rng.random((n_suppliers, dim))
        axis = rng.integers(0, dim, size=n_suppliers)
        side = rng.integers(0, 2, size=n_suppliers).astype(np.float64)
        sup[np.arange(n_suppliers), axis] = (lo + side[:, None] * span)[
            np.arange(n_suppliers), axis
        ]
    else:
        raise ValueError(f"unknown supplier layout {supplier_layout!r}")

    points = np.concatenate([cust, sup])
    return SupplierInstance(
        points=points,
        customers=np.arange(n_customers, dtype=np.int64),
        suppliers=np.arange(n_customers, n_customers + n_suppliers, dtype=np.int64),
    )
